/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * simulated-cycles-per-second for a small kernel, cache and coalescer
 * throughput. Guards against performance regressions in the hot loops
 * that every experiment depends on.
 *
 * Before the microbenchmarks run, a harness self-check times the same
 * multi-point sweep serially (--jobs 1) and with the requested worker
 * count, verifies the per-point results are byte-identical, and reports
 * points/sec for both. This is the quickest way to see what the
 * parallel harness buys on a given machine.
 *
 * `--emit-json FILE` additionally writes a `bsched-simspeed-v1`
 * artifact: the sim rate of the small kernel bare, with the
 * tracer+sampler stack, with the cycle-accounting profiler, and with
 * the request-level memory profiler. The committed
 * bench/BENCH_simspeed.json baseline is produced this way and CI's
 * perf-smoke step diffs a fresh artifact against it with
 * tools/bench_compare.py (warn-only).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gpu/gpu.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "mem/cache.hh"
#include "obs/mem_profile.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

KernelInfo
smallKernel()
{
    KernelInfo k;
    k.name = "micro";
    k.grid = {30, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder builder;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = builder.pattern(in);
    builder.loop(16).load(i).alu(4).endLoop();
    k.program = builder.build();
    return k;
}

void
BM_SimulateSmallKernel(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Gpu gpu(config);
        gpu.launchKernel(kernel);
        gpu.run();
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernel)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with the full observability stack attached (tracer on
 * every component plus a 512-cycle interval sampler). Comparing against
 * BM_SimulateSmallKernel bounds the enabled-path overhead; the disabled
 * path is BM_SimulateSmallKernel itself (null tracer, no sampler).
 */
void
BM_SimulateSmallKernelObserved(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Tracer tracer(config.numCores, config.numMemPartitions);
        IntervalSampler sampler(512);
        Gpu gpu(config, Observer{&tracer, &sampler});
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(tracer.recorded());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelObserved)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with only the cycle-accounting profiler attached.
 * Comparing against BM_SimulateSmallKernel bounds the per-slot
 * classification overhead of --profile runs; the disabled path — a
 * null profiler pointer — is BM_SimulateSmallKernel itself.
 */
void
BM_SimulateSmallKernelProfiled(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        CycleProfiler profiler;
        Gpu gpu(config, Observer{nullptr, nullptr, &profiler});
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(profiler.total().total());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelProfiled)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with only the request-level memory profiler attached.
 * Comparing against BM_SimulateSmallKernel bounds the per-request
 * bookkeeping overhead of --mem-profile runs; the disabled path — null
 * memProfiler pointers throughout the memory system — is
 * BM_SimulateSmallKernel itself and is pinned to the ≤5% budget by the
 * perf-smoke trajectory.
 */
void
BM_SimulateSmallKernelMemProfiled(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MemProfiler profiler;
        Observer obs;
        obs.memProfiler = &profiler;
        Gpu gpu(config, obs);
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(profiler.completedRequests());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelMemProfiled)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State& state)
{
    CacheConfig cfg;
    TagArray tags(cfg, "bench.l1");
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr line = (n * 127) % 4096 * cfg.lineBytes;
        benchmark::DoNotOptimize(tags.access(line, n));
        if (!tags.probe(line))
            tags.fill(line, n);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalescer(benchmark::State& state)
{
    MemPattern p;
    p.kind = AccessKind::Strided;
    p.strideElems = static_cast<std::uint32_t>(state.range(0));
    KernelGeom geom{256, 120};
    std::uint64_t iter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            coalesce(p, geom, 3, 2, iter++, kWarpSize, 128));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_Coalescer)->Arg(1)->Arg(8)->Arg(32);

void
BM_WorkloadConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        for (const auto& name : workloadNames())
            benchmark::DoNotOptimize(makeWorkload(name));
    }
}
BENCHMARK(BM_WorkloadConstruction)->Unit(benchmark::kMillisecond);

/**
 * Pull `--jobs N` / `--jobs=N` / `-jN` and `--emit-json FILE` out of the
 * command line (so the rest can go to benchmark::Initialize). Unlike
 * bench::parseJobs this is lenient about unknown arguments —
 * google-benchmark owns them here.
 */
unsigned
extractJobsArg(int& argc, char** argv, std::string& emit_json)
{
    unsigned requested = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc)
            value = argv[++i];
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            value = arg + 7;
        else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0')
            value = arg + 2;
        else if (std::strcmp(arg, "--emit-json") == 0 && i + 1 < argc) {
            emit_json = argv[++i];
            continue;
        } else if (std::strncmp(arg, "--emit-json=", 12) == 0) {
            emit_json = arg + 12;
            continue;
        }
        if (value != nullptr) {
            const long parsed = std::strtol(value, nullptr, 10);
            if (parsed <= 0)
                fatal("--jobs expects a positive integer, got '", value, "'");
            requested = static_cast<unsigned>(parsed);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return requested;
}

/** One measured simulator configuration for the simspeed artifact. */
struct RateSample
{
    double simCyclesPerSec = 0.0;
    std::uint64_t cyclesPerRep = 0;
    double wallSec = 0.0;
};

/** Which observers the measured runs attach. */
enum class ObsMode
{
    Plain,       ///< no observers — the null-pointer disabled path
    Observed,    ///< tracer + interval sampler (as --trace runs)
    Profiled,    ///< cycle-accounting profiler only (as --profile runs)
    MemProfiled  ///< memory profiler only (as --mem-profile runs)
};

/**
 * Time @p reps simulations of @p kernel with the observers selected by
 * @p mode (after one untimed warmup run) and return the achieved
 * simulated-cycles-per-wall-second.
 */
RateSample
measureSimRate(const GpuConfig& config, const KernelInfo& kernel, int reps,
               ObsMode mode)
{
    using Clock = std::chrono::steady_clock;
    auto simulate = [&]() -> std::uint64_t {
        Tracer tracer(config.numCores, config.numMemPartitions);
        IntervalSampler sampler(512);
        CycleProfiler profiler;
        MemProfiler mem_profiler;
        Observer obs;
        if (mode == ObsMode::Observed) {
            obs.tracer = &tracer;
            obs.sampler = &sampler;
        } else if (mode == ObsMode::Profiled) {
            obs.profiler = &profiler;
        } else if (mode == ObsMode::MemProfiled) {
            obs.memProfiler = &mem_profiler;
        }
        Gpu gpu(config, obs);
        gpu.launchKernel(kernel);
        gpu.run();
        return gpu.cycle();
    };

    RateSample sample;
    sample.cyclesPerRep = simulate(); // warmup, also pins the cycle count
    const Clock::time_point t0 = Clock::now();
    std::uint64_t total_cycles = 0;
    for (int rep = 0; rep < reps; ++rep)
        total_cycles += simulate();
    sample.wallSec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (sample.wallSec > 0.0) {
        sample.simCyclesPerSec =
            static_cast<double>(total_cycles) / sample.wallSec;
    }
    return sample;
}

/**
 * Write the `bsched-simspeed-v1` artifact: the sim rate of the small
 * kernel with no observers, with the tracer+sampler stack, with the
 * cycle-accounting profiler, and with the memory profiler, plus the
 * enabled-path overhead ratios. CI's perf-smoke step compares a fresh
 * artifact against the committed bench/BENCH_simspeed.json baseline
 * with tools/bench_compare.py (warn-only — absolute rates are
 * machine-dependent).
 */
void
writeSimspeedJson(const std::string& path)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    constexpr int kReps = 5;
    const RateSample plain =
        measureSimRate(config, kernel, kReps, ObsMode::Plain);
    const RateSample observed =
        measureSimRate(config, kernel, kReps, ObsMode::Observed);
    const RateSample profiled =
        measureSimRate(config, kernel, kReps, ObsMode::Profiled);
    const RateSample mem_profiled =
        measureSimRate(config, kernel, kReps, ObsMode::MemProfiled);

    auto mode_json = [](std::ostream& os, const char* name,
                        const RateSample& s, bool last) {
        os << "    \"" << name << "\": {\"sim_cycles_per_s\": "
           << jsonNumber(s.simCyclesPerSec) << ", \"cycles_per_rep\": "
           << s.cyclesPerRep << ", \"wall_s\": " << jsonNumber(s.wallSec)
           << "}" << (last ? "\n" : ",\n");
    };
    auto ratio = [&](const RateSample& s) {
        return plain.simCyclesPerSec > 0.0
            ? s.simCyclesPerSec / plain.simCyclesPerSec
            : 0.0;
    };
    const std::size_t bytes = writeFile(path, [&](std::ostream& os) {
        os << "{\n  \"schema\": \"bsched-simspeed-v1\",\n"
           << "  \"kernel\": \"" << jsonEscape(kernel.name) << "\",\n"
           << "  \"reps\": " << kReps << ",\n  \"modes\": {\n";
        mode_json(os, "plain", plain, false);
        mode_json(os, "observed", observed, false);
        mode_json(os, "profiled", profiled, false);
        mode_json(os, "memprofiled", mem_profiled, true);
        os << "  },\n  \"relative_rate\": {\"observed_vs_plain\": "
           << jsonNumber(ratio(observed)) << ", \"profiled_vs_plain\": "
           << jsonNumber(ratio(profiled))
           << ", \"memprofiled_vs_plain\": "
           << jsonNumber(ratio(mem_profiled)) << "}\n}\n";
    });
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), bytes);
}

/**
 * Time the same sweep serially and with @p jobs workers, check the
 * per-point results match exactly, and report points/sec for both.
 */
void
harnessSelfCheck(unsigned jobs)
{
    using Clock = std::chrono::steady_clock;
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    const std::uint32_t limits = 8; // >= 8 independent simulation points

    const auto t0 = Clock::now();
    const auto serial = sweepCtaLimit(config, kernel, limits, 1);
    const auto t1 = Clock::now();
    const auto parallel = sweepCtaLimit(config, kernel, limits, jobs);
    const auto t2 = Clock::now();

    if (serial.size() != parallel.size())
        fatal("harness self-check: point-count mismatch");
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].cycles != parallel[i].cycles ||
            serial[i].instrs != parallel[i].instrs ||
            serial[i].ipc != parallel[i].ipc) {
            fatal("harness self-check: point ", i,
                  " differs between --jobs 1 and --jobs ", jobs,
                  " (determinism violated)");
        }
    }

    const auto secs = [](Clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    const double s_serial = secs(t1 - t0);
    const double s_parallel = secs(t2 - t1);
    std::printf("harness self-check: %u-point sweep, per-point results "
                "identical\n",
                limits);
    std::printf("  --jobs 1:  %6.2f points/s (%.3fs)\n", limits / s_serial,
                s_serial);
    std::printf("  --jobs %-2u: %6.2f points/s (%.3fs), %.2fx\n", jobs,
                limits / s_parallel, s_parallel, s_serial / s_parallel);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string emit_json;
    const unsigned jobs =
        bsched::resolveJobs(extractJobsArg(argc, argv, emit_json));
    harnessSelfCheck(jobs);
    if (!emit_json.empty())
        writeSimspeedJson(emit_json);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
