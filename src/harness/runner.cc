#include "harness/runner.hh"

#include "harness/parallel_runner.hh"
#include "kernel/occupancy.hh"
#include "workloads/suite.hh"

namespace bsched {

namespace {

double
missRate(const StatSet& stats, const std::string& access_suffix,
         const std::string& miss_suffix)
{
    const double access = stats.sumBySuffix(access_suffix);
    const double miss = stats.sumBySuffix(miss_suffix);
    return access > 0.0 ? miss / access : 0.0;
}

} // namespace

double
RunResult::l1MissRate() const
{
    return missRate(stats, ".l1d.access", ".l1d.miss");
}

double
RunResult::l2MissRate() const
{
    return missRate(stats, ".l2.access", ".l2.miss");
}

double
RunResult::dramRowHitRate() const
{
    const double hits = stats.sumBySuffix(".dram.row_hit");
    const double total = hits + stats.sumBySuffix(".dram.row_miss");
    return total > 0.0 ? hits / total : 0.0;
}

RunResult
runKernel(const GpuConfig& config, const KernelInfo& kernel)
{
    return runKernel(config, kernel, Observer{});
}

RunResult
runKernel(const GpuConfig& config, const KernelInfo& kernel, Observer obs)
{
    Gpu gpu(config, obs);
    gpu.launchKernel(kernel);
    gpu.run();
    RunResult result;
    result.cycles = gpu.cycle();
    result.instrs = gpu.totalInstrsIssued();
    result.ipc = gpu.ipc();
    result.stats = gpu.stats();
    return result;
}

RunResult
runWorkload(const GpuConfig& config, const std::string& name)
{
    const KernelInfo kernel = makeWorkload(name);
    return runKernel(config, kernel);
}

std::vector<RunResult>
sweepCtaLimit(GpuConfig config, const KernelInfo& kernel,
              std::uint32_t limit_max, unsigned jobs)
{
    std::vector<SimPoint> points;
    points.reserve(limit_max);
    for (std::uint32_t limit = 1; limit <= limit_max; ++limit) {
        config.staticCtaLimit = limit;
        points.push_back({config, kernel,
                          kernel.name + "/limit" + std::to_string(limit)});
    }
    return runGrid(points, jobs);
}

OracleResult
oracleStaticBest(const GpuConfig& config, const KernelInfo& kernel,
                 unsigned jobs)
{
    OracleResult oracle;
    oracle.maxLimit = maxCtasPerCore(config, kernel);
    oracle.byLimit = sweepCtaLimit(config, kernel, oracle.maxLimit, jobs);
    oracle.bestLimit = 1;
    for (std::uint32_t limit = 2; limit <= oracle.maxLimit; ++limit) {
        if (oracle.byLimit[limit - 1].ipc >
            oracle.byLimit[oracle.bestLimit - 1].ipc) {
            oracle.bestLimit = limit;
        }
    }
    return oracle;
}

GpuConfig
makeConfig(WarpSchedKind warp_sched, CtaSchedKind cta_sched)
{
    GpuConfig config = GpuConfig::gtx480();
    config.warpSched = warp_sched;
    config.ctaSched = cta_sched;
    return config;
}

} // namespace bsched
