# Empty dependencies file for fig_lcs_estimators.
# This may be replaced when dependencies are built.
