/**
 * @file
 * Request-level memory latency attribution — the fifth pillar of the
 * observability subsystem.
 *
 * The cycle profiler (obs/profile.hh) shows *that* memory stalls
 * dominate past a kernel's optimal CTA count; this profiler shows
 * *where* each memory request spends that time and *which CTAs evict
 * each other's cache lines* — the interference mechanism LCS exploits.
 *
 * The profiled unit is one L1D read-miss fetch: the request a core
 * injects into the memory system when a load misses its L1 and
 * allocates a new MSHR entry. Each fetch carries a `reqId` through
 * `ldst_unit → interconnect → mem_partition → dram` and back; the
 * components report stage transitions so the profiler can attribute
 * every cycle between allocation and fill delivery to exactly one
 * pipeline stage:
 *
 *  - `core_q`    waiting in the core's outgoing request buffer
 *  - `noc_req`   request-network traversal (latency + ejection backlog)
 *  - `l2_q`      L2 input queue, pipeline latency and head-of-line
 *                retries until the tag access that disposes the request
 *  - `dram_q`    waiting in the DRAM channel queue (primary L2 miss)
 *  - `dram_svc`  bank access + data bus until the fill reaches the L2
 *  - `l2_mshr`   merged secondary miss waiting on an in-flight fetch
 *  - `l2_ret`    reply buffered in the partition for the network
 *  - `noc_resp`  response-network traversal until delivery at the core
 *
 * Two conservation laws hold by construction and are contract-checked:
 * per request the stage durations sum exactly to the end-to-end
 * latency, and the end-to-end histogram total equals the completed
 * request count. A request may not complete without its final
 * (`noc_resp`) stage open — an unclosed stage is a BSCHED_CHECK
 * violation.
 *
 * Latencies are binned into deterministic fixed-boundary power-of-two
 * histograms, aggregated per requesting core and per kernel. On top of
 * the latency path the profiler counts inter-CTA interference: L1/L2
 * evictions where the evicting CTA differs from the victim line's
 * owner, the number of distinct CTAs resident in a set at eviction
 * time, and time-weighted MSHR-occupancy histograms for both levels.
 *
 * Like the tracer/sampler/profiler, the MemProfiler is owned by the
 * caller and attached through Observer; with no profiler attached every
 * hook in the memory path is a single untaken null-pointer branch.
 */

#ifndef BSCHED_OBS_MEM_PROFILE_HH
#define BSCHED_OBS_MEM_PROFILE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace bsched {

/** Pipeline stage a profiled memory request can occupy. */
enum class MemStage : std::uint8_t
{
    CoreQueue = 0, ///< core outgoing request buffer
    NocRequest,    ///< request network
    L2Queue,       ///< partition input queue + L2 lookup retries
    DramQueue,     ///< DRAM channel queue (primary L2 miss)
    DramService,   ///< bank access + data bus until the L2 fill
    L2Mshr,        ///< merged secondary waiting on an in-flight fetch
    L2Return,      ///< partition reply buffer
    NocResponse,   ///< response network until core delivery
};

/** Number of MemStage values (array sizing). */
inline constexpr std::size_t kNumMemStages = 8;

/** Stable stage name used in the exported JSON ("dram_q"). */
const char* toString(MemStage stage);

/** Cache level an interference observation belongs to. */
enum class MemLevel : std::uint8_t
{
    L1 = 0,
    L2,
};

inline constexpr std::size_t kNumMemLevels = 2;

const char* toString(MemLevel level);

/**
 * Globally unique CTA key: kernel id in the upper half, linearized grid
 * CTA id in the lower. -1 marks "no owner" (untracked fill).
 */
inline std::int64_t
makeCtaKey(int kernel_id, std::uint32_t cta_id)
{
    return (static_cast<std::int64_t>(kernel_id) << 32) |
        static_cast<std::int64_t>(cta_id);
}

/**
 * Fixed-boundary histogram with power-of-two bucket upper bounds
 * (1, 2, 4, ..., 2^16) plus one overflow bucket. The boundaries are
 * compile-time constants, so two runs that observe the same values
 * always produce byte-identical serialized histograms.
 */
class LatencyHistogram
{
  public:
    /** Buckets with finite upper bounds; bucket i covers
     *  (bound(i-1), bound(i)]. One extra overflow bucket follows. */
    static constexpr std::size_t kFiniteBuckets = 17;
    static constexpr std::size_t kNumBuckets = kFiniteBuckets + 1;

    /** Inclusive upper bound of finite bucket @p i (2^i). */
    static constexpr std::uint64_t
    bound(std::size_t i)
    {
        return std::uint64_t{1} << i;
    }

    void
    record(std::uint64_t value)
    {
        record(value, 1);
    }

    /**
     * Record @p value @p n times in one update. Used to account
     * fast-forwarded spans whose per-cycle observation is constant
     * (e.g. MSHR occupancy); order-independent, so n batched updates
     * serialize identically to n singles.
     */
    void
    record(std::uint64_t value, std::uint64_t n)
    {
        if (n == 0)
            return;
        counts_[bucketOf(value)] += n;
        sum_ += value * n;
        if (count_ == 0 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
        count_ += n;
    }

    /** Bucket index @p value falls into. */
    static std::size_t
    bucketOf(std::uint64_t value)
    {
        for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
            if (value <= bound(i))
                return i;
        }
        return kFiniteBuckets; // overflow bucket
    }

    std::uint64_t total() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ > 0
            ? static_cast<double>(sum_) / static_cast<double>(count_)
            : 0.0;
    }

    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }

    void
    accumulate(const LatencyHistogram& other)
    {
        for (std::size_t i = 0; i < kNumBuckets; ++i)
            counts_[i] += other.counts_[i];
        sum_ += other.sum_;
        if (other.count_ > 0) {
            if (count_ == 0 || other.min_ < min_)
                min_ = other.min_;
            if (other.max_ > max_)
                max_ = other.max_;
        }
        count_ += other.count_;
    }

  private:
    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Latency aggregation of one bucket (a core, a kernel, or the total):
 *  end-to-end plus one histogram per pipeline stage. */
struct StageProfile
{
    LatencyHistogram endToEnd;
    std::array<LatencyHistogram, kNumMemStages> stages{};

    /** Completed requests binned into this bucket. */
    std::uint64_t completed() const { return endToEnd.total(); }

    /** Conservation: per-stage cycle sums must equal the end-to-end
     *  sum (each in-flight cycle is attributed to exactly one stage). */
    std::uint64_t
    stageCycleSum() const
    {
        std::uint64_t sum = 0;
        for (const LatencyHistogram& h : stages)
            sum += h.sum();
        return sum;
    }

    void
    accumulate(const StageProfile& other)
    {
        endToEnd.accumulate(other.endToEnd);
        for (std::size_t s = 0; s < kNumMemStages; ++s)
            stages[s].accumulate(other.stages[s]);
    }
};

/** Interference observations at one cache level. */
struct InterferenceCounts
{
    std::uint64_t evictions = 0;       ///< valid victims on fill
    std::uint64_t crossCtaEvictions = 0; ///< evictor CTA != victim CTA
    /** Distinct CTA owners resident in the victim set at eviction. */
    LatencyHistogram setOccupancy;
    /** Time-weighted MSHR occupancy (one sample per component-cycle). */
    LatencyHistogram mshrOccupancy;

    double
    crossCtaFraction() const
    {
        return evictions > 0 ? static_cast<double>(crossCtaEvictions) /
                static_cast<double>(evictions)
                             : 0.0;
    }
};

/** Request-level memory profiler (see the file comment). */
class MemProfiler
{
  public:
    MemProfiler() = default;

    /**
     * Called by the Gpu when the profiler is attached: records the core
     * count the per-core aggregation describes. Reattaching with a
     * different geometry is fatal.
     */
    void onAttach(std::uint32_t num_cores);

    // --- request lifecycle (hot path, only reached when attached) -------

    /**
     * Open a record for a new L1 read-miss fetch from @p core,
     * attributed to @p kernel_id / @p cta_key, with the `core_q` stage
     * open at @p now. Returns the nonzero request id the fetch carries
     * through the memory system.
     */
    std::uint32_t beginRequest(Cycle now, std::uint32_t core,
                               int kernel_id, std::int64_t cta_key);

    /**
     * Move request @p req_id into @p stage at @p now, attributing the
     * elapsed cycles to the stage it is leaving. No-op for req_id 0.
     */
    void enterStage(std::uint32_t req_id, MemStage stage, Cycle now);

    /**
     * Close request @p req_id at fill delivery. Contract-checks that
     * the final (`noc_resp`) stage is the one open and that the stage
     * durations sum to the end-to-end latency, then bins everything
     * into the per-core and per-kernel histograms.
     */
    void endRequest(std::uint32_t req_id, Cycle now);

    /** CTA key request @p req_id was issued for (-1 if unknown). */
    std::int64_t ctaKeyOf(std::uint32_t req_id) const;

    // --- interference observations --------------------------------------

    /**
     * Record a fill at @p level that evicted a valid line: @p evictor
     * is the filling CTA's key, @p victim the evicted line's owner key
     * (-1 when untracked), @p distinct_owners the number of distinct
     * CTA owners resident in the set at eviction time.
     */
    void onEviction(MemLevel level, std::int64_t evictor,
                    std::int64_t victim, std::uint32_t distinct_owners);

    /** Record one cycle of MSHR occupancy at @p level. */
    void
    recordMshrOccupancy(MemLevel level, std::uint32_t in_use)
    {
        interference_[static_cast<std::size_t>(level)]
            .mshrOccupancy.record(in_use);
    }

    /** Record @p n cycles of constant MSHR occupancy (a fast-forwarded
     *  span during which no request was allocated or filled). */
    void
    recordMshrOccupancySpan(MemLevel level, std::uint32_t in_use,
                            std::uint64_t n)
    {
        interference_[static_cast<std::size_t>(level)]
            .mshrOccupancy.record(in_use, n);
    }

    // --- queries ---------------------------------------------------------

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    std::uint64_t begunRequests() const { return begun_; }
    std::uint64_t completedRequests() const { return completed_; }

    /** Requests begun but not yet completed (0 after a drained run). */
    std::uint64_t
    outstandingRequests() const
    {
        return static_cast<std::uint64_t>(outstanding_.size());
    }

    /** Latency aggregation of @p core (requests it issued). */
    const StageProfile& core(std::uint32_t core) const
    {
        return cores_.at(core);
    }

    /** Per-kernel latency aggregations (kernel id order). */
    const std::map<int, StageProfile>& kernels() const { return kernels_; }

    /** Whole-machine latency aggregation (sum over cores). */
    StageProfile total() const;

    const InterferenceCounts& interference(MemLevel level) const
    {
        return interference_[static_cast<std::size_t>(level)];
    }

  private:
    struct Record
    {
        Cycle begin = 0;
        Cycle stageStart = 0;
        MemStage stage = MemStage::CoreQueue;
        std::uint32_t core = 0;
        int kernelId = kInvalidId;
        std::int64_t ctaKey = -1;
        std::array<std::uint64_t, kNumMemStages> stageCycles{};
    };

    std::vector<StageProfile> cores_;
    std::map<int, StageProfile> kernels_;
    std::array<InterferenceCounts, kNumMemLevels> interference_{};
    /** In-flight records, keyed by request id (ordered: deterministic
     *  iteration for any future dump of the outstanding set). */
    std::map<std::uint32_t, Record> outstanding_;
    std::uint32_t nextReqId_ = 1; ///< 0 marks an untracked request
    std::uint64_t begun_ = 0;
    std::uint64_t completed_ = 0;
};

/**
 * One point of a `bsched-memprofile-v1` artifact: a label, scalar
 * parameters (CTA limit, derived rates, ...) serialized in insertion
 * order, and the profiler holding the point's aggregations.
 */
struct MemProfilePoint
{
    std::string label;
    std::vector<std::pair<std::string, double>> params;
    const MemProfiler* prof = nullptr;
};

/**
 * Write @p points with the `bsched-memprofile-v1` schema. Deterministic
 * byte-for-byte: stages in declaration order, kernels and cores in id
 * order, histogram buckets in bound order.
 */
void writeMemProfileJson(std::ostream& os,
                         const std::vector<MemProfilePoint>& points,
                         const std::string& label);

/** Single-run convenience overload (the bench `--mem-profile` path). */
void writeMemProfileJson(std::ostream& os, const MemProfiler& prof,
                         const std::string& label);

} // namespace bsched

#endif // BSCHED_OBS_MEM_PROFILE_HH
