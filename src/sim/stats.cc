#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace bsched {

void
StatSet::add(const std::string& name, double value)
{
    map_[name] += value;
}

void
StatSet::set(const std::string& name, double value)
{
    map_[name] = value;
}

bool
StatSet::has(const std::string& name) const
{
    return map_.find(name) != map_.end();
}

double
StatSet::get(const std::string& name) const
{
    auto it = map_.find(name);
    return it == map_.end() ? 0.0 : it->second;
}

double
StatSet::getOr(const std::string& name, double fallback) const
{
    auto it = map_.find(name);
    return it == map_.end() ? fallback : it->second;
}

double
StatSet::require(const std::string& name) const
{
    auto it = map_.find(name);
    if (it == map_.end())
        fatal("missing required stat: ", name);
    return it->second;
}

namespace {
bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
} // namespace

double
StatSet::sumBySuffix(const std::string& suffix) const
{
    double sum = 0.0;
    for (const auto& [name, value] : map_) {
        if (endsWith(name, suffix))
            sum += value;
    }
    return sum;
}

std::vector<std::string>
StatSet::namesBySuffix(const std::string& suffix) const
{
    std::vector<std::string> names;
    for (const auto& [name, value] : map_) {
        if (endsWith(name, suffix))
            names.push_back(name);
    }
    return names;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.map_)
        map_[name] += value;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto& [name, value] : map_)
        os << name << " = " << value << "\n";
    return os.str();
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        fatal("geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        fatal("percentile of empty vector");
    if (p < 0.0 || p > 100.0)
        fatal("percentile requires p in [0, 100], got ", p);
    std::sort(values.begin(), values.end());
    if (p == 0.0)
        return values.front();
    // Nearest-rank: the ceil(p/100 * N)-th smallest value (1-based).
    // Multiply before dividing and shave an epsilon so exact-integer
    // products don't land a hair above the true rank and ceil one rank
    // too high (p99 of 100 samples is rank 99, but 99/100.0*100 rounds
    // to 99.000000000000014).
    const auto n = static_cast<double>(values.size());
    auto rank = static_cast<std::size_t>(std::ceil(p * n / 100.0 - 1e-9));
    if (rank < 1)
        rank = 1;
    if (rank > values.size())
        rank = values.size();
    return values[rank - 1];
}

double
harmonicMean(const std::vector<double>& values)
{
    if (values.empty())
        fatal("harmonicMean of empty vector");
    double inv_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("harmonicMean requires positive values, got ", v);
        inv_sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv_sum;
}

} // namespace bsched
