/**
 * @file
 * Serving-layer tests: the fixed-point exponential sampler, the
 * deterministic traffic generator, the runtime predictor, the serving
 * engine's admission/ordering invariants, and the determinism
 * contracts the committed `bsched-serving-v1` artifact depends on —
 * byte-identical reports with fast-forward on or off and for any
 * harness job count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "serve/engine.hh"
#include "serve/serve_trace.hh"
#include "serve/serving_report.hh"
#include "serve/traffic.hh"
#include "sim/rng.hh"

namespace bsched {
namespace {

/** Small machine so engine tests stay fast; policies are identical. */
GpuConfig
serveCfg(bool fast_forward = true)
{
    GpuConfig c = makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
    c.numCores = 4;
    c.numMemPartitions = 2;
    c.fastForward = fast_forward;
    return c;
}

/** Two open-loop tenants over the cheapest suite kernels. */
TrafficSpec
smallSpec(std::uint64_t seed = 5)
{
    TrafficSpec spec;
    spec.seed = seed;
    TenantSpec t0;
    t0.mix = {"lud", "nw"};
    t0.requests = 4;
    t0.meanGapCycles = 4000;
    TenantSpec t1;
    t1.mix = {"pf"};
    t1.requests = 3;
    t1.meanGapCycles = 6000;
    spec.tenants = {t0, t1};
    return spec;
}

std::map<std::string, Cycle>
fakeIsolated()
{
    return {{"lud", 8000}, {"nw", 9000}, {"pf", 12000}};
}

// --- negLogQ32 ----------------------------------------------------------

TEST(NegLogQ32, HalfMapsToLn2)
{
    // r = 2^63 is u = 1/2, so -ln(u) = ln 2 = the sampler's own Q32
    // constant (round(ln2 * 2^32) = 2977044472) up to series truncation.
    const std::uint64_t got = negLogQ32(1ULL << 63);
    EXPECT_NEAR(static_cast<double>(got), 2977044472.0, 16.0);
}

TEST(NegLogQ32, QuarterIsTwiceHalf)
{
    const std::uint64_t half = negLogQ32(1ULL << 63);
    const std::uint64_t quarter = negLogQ32(1ULL << 62);
    EXPECT_NEAR(static_cast<double>(quarter),
                2.0 * static_cast<double>(half), 16.0);
}

TEST(NegLogQ32, MonotoneDecreasingInR)
{
    std::uint64_t prev = negLogQ32(1);
    for (int shift = 8; shift < 64; shift += 8) {
        const std::uint64_t cur = negLogQ32(1ULL << shift);
        EXPECT_LT(cur, prev) << "shift " << shift;
        prev = cur;
    }
}

TEST(NegLogQ32, ExtremesAreFiniteAndOrdered)
{
    // r -> 0 pins at u = 2^-64: 64 * ln2. r -> 2^64-1 approaches 0.
    EXPECT_EQ(negLogQ32(0), negLogQ32(1));
    EXPECT_NEAR(static_cast<double>(negLogQ32(0)),
                64.0 * 2977044472.0, 1024.0);
    EXPECT_LT(negLogQ32(~0ULL), 16u);
}

TEST(NegLogQ32, SampleMeanMatchesExponential)
{
    // Mean of -ln(U) over uniform U is 1; the empirical Q32 mean over
    // many seeded draws should land near 2^32 (loose 5% band).
    Rng rng(123);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(negLogQ32(rng.next()));
    const double mean = sum / n;
    EXPECT_NEAR(mean, 4294967296.0, 0.05 * 4294967296.0);
}

// --- traffic generator --------------------------------------------------

TEST(Traffic, SameSpecSameTrace)
{
    const auto a = generateTrace(smallSpec());
    const auto b = generateTrace(smallSpec());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].thinkCycles, b[i].thinkCycles);
        EXPECT_EQ(a[i].deadlineSlack, b[i].deadlineSlack);
    }
}

TEST(Traffic, DifferentSeedsDiffer)
{
    const auto a = generateTrace(smallSpec(5));
    const auto b = generateTrace(smallSpec(6));
    ASSERT_EQ(a.size(), b.size());
    bool any_differ = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].arrival != b[i].arrival ||
            a[i].workload != b[i].workload) {
            any_differ = true;
        }
    }
    EXPECT_TRUE(any_differ);
}

TEST(Traffic, SortedByArrivalWithSeqAsPosition)
{
    const auto trace = generateTrace(smallSpec());
    ASSERT_EQ(trace.size(), 7u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].seq, i);
        if (i > 0) {
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
    }
}

TEST(Traffic, WorkloadsComeFromTheTenantMix)
{
    const auto trace = generateTrace(smallSpec());
    for (const LaunchRequest& req : trace) {
        if (req.tenant == 0) {
            EXPECT_TRUE(req.workload == "lud" || req.workload == "nw");
        } else {
            EXPECT_EQ(req.workload, "pf");
        }
    }
}

TEST(Traffic, ClosedLoopShape)
{
    TrafficSpec spec;
    spec.seed = 9;
    TenantSpec t;
    t.process = ArrivalProcess::ClosedLoop;
    t.mix = {"lud"};
    t.requests = 6;
    t.closedDepth = 2;
    t.meanGapCycles = 1000;
    spec.tenants = {t};
    const auto trace = generateTrace(spec);
    ASSERT_EQ(trace.size(), 6u);
    // The first `depth` requests prime the loop with concrete arrivals;
    // the tail is released at serve time, think-delayed.
    std::size_t concrete = 0;
    for (const LaunchRequest& req : trace) {
        if (req.arrival != kCycleNever) {
            ++concrete;
        } else {
            EXPECT_GE(req.thinkCycles, 1u);
        }
    }
    EXPECT_EQ(concrete, 2u);
}

TEST(Traffic, BurstyArrivalsClusterInsideBursts)
{
    TrafficSpec spec;
    spec.seed = 3;
    TenantSpec t;
    t.process = ArrivalProcess::Bursty;
    t.mix = {"lud"};
    t.requests = 8;
    t.burstLen = 4;
    t.meanGapCycles = 500000;
    t.intraBurstGapCycles = 100;
    spec.tenants = {t};
    const auto trace = generateTrace(spec);
    ASSERT_EQ(trace.size(), 8u);
    // Within a burst the gap is the fixed intra-burst spacing.
    EXPECT_EQ(trace[1].arrival - trace[0].arrival, 100u);
    EXPECT_EQ(trace[2].arrival - trace[1].arrival, 100u);
    EXPECT_EQ(trace[3].arrival - trace[2].arrival, 100u);
    // Between bursts the exponential gap dominates.
    EXPECT_GT(trace[4].arrival - trace[3].arrival, 1000u);
}

TEST(Traffic, MalformedSpecsDie)
{
    TrafficSpec empty;
    EXPECT_DEATH(generateTrace(empty), "tenant");
    TrafficSpec no_mix = smallSpec();
    no_mix.tenants[0].mix.clear();
    EXPECT_DEATH(generateTrace(no_mix), "mix");
    TrafficSpec no_reqs = smallSpec();
    no_reqs.tenants[1].requests = 0;
    EXPECT_DEATH(generateTrace(no_reqs), "request");
}

// --- runtime predictor --------------------------------------------------

TEST(Predictor, FallbackUsesAssumedIpc)
{
    const RuntimePredictor pred(8.0);
    EXPECT_EQ(pred.predictTotal("fresh", 8000), 1000u);
}

TEST(Predictor, HistorySeedsThenBlends)
{
    RuntimePredictor pred(8.0, 0.5);
    pred.recordCompletion("k", 400);
    EXPECT_EQ(pred.predictTotal("k", 123456), 400u);
    pred.recordCompletion("k", 800);
    EXPECT_EQ(pred.predictTotal("k", 123456), 600u); // 0.5*800 + 0.5*400
    EXPECT_EQ(pred.completions(), 2u);
}

TEST(Predictor, MonitoredIpcExtrapolatesRemaining)
{
    const RuntimePredictor pred(8.0);
    // 400 of 800 instructions in 100 cycles (IPC 4), monitoring done:
    // remaining 400 instructions at IPC 4 = 100 cycles.
    EXPECT_EQ(pred.predictRemaining("k", 800, 400, 100, 50), 100u);
    // All instructions issued: finishing imminently.
    EXPECT_EQ(pred.predictRemaining("k", 800, 800, 100, 50), 1u);
    // Still inside the monitoring window: history-based estimate minus
    // elapsed (fallback 800/8 = 100 total, 40 elapsed).
    EXPECT_EQ(pred.predictRemaining("k", 800, 10, 40, 50), 60u);
}

// --- policies / engine --------------------------------------------------

TEST(ServePolicy, NamesAndCanonicalOrder)
{
    const auto all = allServePolicies();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_STREQ(toString(all[0]), "sequential");
    EXPECT_STREQ(toString(all[1]), "spatial");
    EXPECT_STREQ(toString(all[2]), "fcfs");
    EXPECT_STREQ(toString(all[3]), "reorder");
    EXPECT_STREQ(toString(all[4]), "reorder+preempt");
}

TEST(ServingEngine, ServesEveryRequestExactlyOnce)
{
    ServeConfig serve;
    serve.policy = ServePolicy::Fcfs;
    ServingEngine engine(serveCfg(), serve);
    const auto trace = generateTrace(smallSpec());
    const ServingRunResult result = engine.run(trace);
    ASSERT_EQ(result.outcomes.size(), trace.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const RequestOutcome& out = result.outcomes[i];
        EXPECT_EQ(out.req.seq, i);
        ASSERT_NE(out.admit, kCycleNever);
        ASSERT_NE(out.finish, kCycleNever);
        EXPECT_GE(out.admit, out.release);
        EXPECT_GT(out.finish, out.admit);
        EXPECT_LE(out.finish, result.totalCycles);
    }
}

TEST(ServingEngine, SequentialNeverOverlapsKernels)
{
    ServeConfig serve;
    serve.policy = ServePolicy::Sequential;
    ServingEngine engine(serveCfg(), serve);
    const ServingRunResult result = engine.run(generateTrace(smallSpec()));
    // FCFS one-at-a-time: each admission waits for the previous finish.
    std::vector<RequestOutcome> by_admit = result.outcomes;
    std::sort(by_admit.begin(), by_admit.end(),
              [](const RequestOutcome& a, const RequestOutcome& b) {
                  return a.admit < b.admit;
              });
    for (std::size_t i = 1; i < by_admit.size(); ++i)
        EXPECT_GE(by_admit[i].admit, by_admit[i - 1].finish);
    EXPECT_EQ(result.preemptions, 0u);
    EXPECT_EQ(result.reorders, 0u);
}

TEST(ServingEngine, ReorderPreemptMatchesReorderWithoutDeadlines)
{
    // No deadlines -> nothing is ever urgent -> the preemption path
    // never fires and both policies serve the exact same schedule.
    ServeConfig reorder;
    reorder.policy = ServePolicy::Reorder;
    ServingEngine a(serveCfg(), reorder);
    const auto ra = a.run(generateTrace(smallSpec()));

    ServeConfig preempt;
    preempt.policy = ServePolicy::ReorderPreempt;
    ServingEngine b(serveCfg(), preempt);
    const auto rb = b.run(generateTrace(smallSpec()));

    EXPECT_EQ(rb.preemptions, 0u);
    ASSERT_EQ(ra.outcomes.size(), rb.outcomes.size());
    for (std::size_t i = 0; i < ra.outcomes.size(); ++i) {
        EXPECT_EQ(ra.outcomes[i].admit, rb.outcomes[i].admit);
        EXPECT_EQ(ra.outcomes[i].finish, rb.outcomes[i].finish);
    }
}

TEST(ServingEngine, RunMayOnlyBeCalledOnce)
{
    ServeConfig serve;
    ServingEngine engine(serveCfg(), serve);
    engine.run(generateTrace(smallSpec()));
    EXPECT_DEATH(engine.run(generateTrace(smallSpec())), "once");
}

// --- determinism contracts ----------------------------------------------

std::string
reportJsonFor(const GpuConfig& config, unsigned jobs)
{
    // A policy subset and a tiny trace keep these tests cheap; the CI
    // serving-smoke job proves the same contract over the full bench
    // matrix.
    const std::vector<ServePolicy> policies = {
        ServePolicy::Spatial, ServePolicy::Fcfs, ServePolicy::Reorder};
    TrafficSpec spec = smallSpec();
    spec.tenants[0].requests = 3;
    spec.tenants[1].requests = 2;
    const ParallelRunner runner(jobs);
    const auto results =
        runner.map<ServingRunResult>(policies.size(), [&](std::size_t i) {
            ServeConfig serve;
            serve.policy = policies[i];
            ServingEngine engine(config, serve);
            return engine.run(generateTrace(spec));
        });
    ServingReport report("test_serve");
    for (std::size_t i = 0; i < policies.size(); ++i) {
        report.addRun(summarizeServing(toString(policies[i]), "small",
                                       results[i], fakeIsolated()));
    }
    return report.toJson();
}

TEST(ServingDeterminism, FastForwardOnOffByteIdentical)
{
    const std::string on = reportJsonFor(serveCfg(true), 2);
    const std::string off = reportJsonFor(serveCfg(false), 2);
    EXPECT_EQ(on, off);
}

TEST(ServingDeterminism, JobCountByteIdentical)
{
    const std::string serial = reportJsonFor(serveCfg(), 1);
    const std::string parallel = reportJsonFor(serveCfg(), 4);
    EXPECT_EQ(serial, parallel);
}

TEST(ServingDeterminism, RepeatRunByteIdentical)
{
    EXPECT_EQ(reportJsonFor(serveCfg(), 2), reportJsonFor(serveCfg(), 2));
}

// --- predictor accuracy -------------------------------------------------

TEST(PredictorAccuracy, CountsAndBinsAbsoluteError)
{
    PredictorAccuracy acc;
    acc.record("k", 100, 110); // under by 10
    acc.record("k", 120, 100); // over by 20
    acc.record("j", 50, 50);   // exact
    EXPECT_EQ(acc.samples(), 3u);
    EXPECT_EQ(acc.overpredictions(), 1u);
    EXPECT_EQ(acc.underpredictions(), 1u);
    EXPECT_EQ(acc.exactPredictions(), 1u);
    EXPECT_DOUBLE_EQ(acc.meanAbsError(), 10.0); // (10 + 20 + 0) / 3
    EXPECT_EQ(acc.errorHistogram().total(), 3u);
    EXPECT_EQ(acc.errorHistogram().sum(), 30u);
    EXPECT_EQ(acc.errorHistogram().max(), 20u);
}

TEST(PredictorAccuracy, EmptyTrackerReadsZero)
{
    const PredictorAccuracy acc;
    EXPECT_EQ(acc.samples(), 0u);
    EXPECT_DOUBLE_EQ(acc.meanAbsError(), 0.0);
    EXPECT_TRUE(acc.workloadSeries("anything").empty());
}

TEST(PredictorAccuracy, WorkloadSeriesPreservesCompletionOrder)
{
    PredictorAccuracy acc;
    acc.record("k", 100, 300);
    acc.record("k", 250, 300);
    acc.record("k", 290, 300);
    const auto& series = acc.workloadSeries("k");
    ASSERT_EQ(series.size(), 3u);
    // The EWMA convergence story: error shrinks sample by sample.
    EXPECT_GT(series[0].absError(), series[1].absError());
    EXPECT_GT(series[1].absError(), series[2].absError());
    EXPECT_EQ(series[0].predicted, 100u);
    EXPECT_EQ(series[2].actual, 300u);
    EXPECT_EQ(acc.byWorkload().size(), 1u);
}

TEST(PredictorAccuracy, ZeroActualDies)
{
    PredictorAccuracy acc;
    EXPECT_DEATH(acc.record("k", 10, 0), "actual");
}

// --- decision audit -----------------------------------------------------

/** Bursty deadline tenants against a long-kernel batch tenant on the
 *  small test machine — tuned so the reorder+preempt policy actually
 *  fires at least one CTA-drain preemption. */
TrafficSpec
deadlineSpec()
{
    TrafficSpec spec;
    spec.seed = 23;
    TenantSpec latency;
    latency.process = ArrivalProcess::Bursty;
    latency.mix = {"lud", "nw"};
    latency.requests = 6;
    latency.burstLen = 3;
    latency.meanGapCycles = 400000;
    latency.intraBurstGapCycles = 1000;
    latency.deadlineSlack = 60000;
    TenantSpec batch;
    batch.process = ArrivalProcess::Poisson;
    batch.mix = {"bp"};
    batch.requests = 2;
    batch.meanGapCycles = 500000;
    spec.tenants = {latency, batch};
    return spec;
}

TEST(ServeAudit, FcfsRunAuditsEveryAdmission)
{
    ServeConfig serve;
    serve.policy = ServePolicy::Fcfs;
    ServingEngine engine(serveCfg(), serve);
    ServeTrace trace;
    engine.setTrace(&trace);
    const ServingRunResult result = engine.run(generateTrace(smallSpec()));

    // Every served request was either admitted plainly or launched as a
    // preemptor; FCFS never preempts.
    EXPECT_EQ(trace.audit.preempts, 0u);
    EXPECT_EQ(trace.audit.admits, result.outcomes.size());

    // The per-kind counts are exactly the log's tallies.
    std::map<ServeDecisionKind, std::uint64_t> tally;
    for (const ServeDecision& d : trace.audit.decisions)
        ++tally[d.kind];
    EXPECT_EQ(tally[ServeDecisionKind::Admit], trace.audit.admits);
    EXPECT_EQ(tally[ServeDecisionKind::Defer], trace.audit.defers);
    EXPECT_EQ(tally[ServeDecisionKind::Preempt], trace.audit.preempts);
    EXPECT_EQ(tally[ServeDecisionKind::DrainCancel],
              trace.audit.drainCancels);

    // Admissions carry the inputs that drove them.
    for (const ServeDecision& d : trace.audit.decisions) {
        if (d.kind != ServeDecisionKind::Admit)
            continue;
        EXPECT_FALSE(d.workload.empty());
        EXPECT_GE(d.tenant, 0);
        EXPECT_GT(d.predictedTotal, 0u);
        EXPECT_EQ(d.reason, "admitted");
    }

    // One predictor accuracy sample per completed launch.
    EXPECT_EQ(trace.accuracy.samples(), result.outcomes.size());
}

TEST(ServeAudit, PreemptionRecordsVictimAndRemainder)
{
    ServeConfig serve;
    serve.policy = ServePolicy::ReorderPreempt;
    ServingEngine engine(serveCfg(), serve);
    ServeTrace trace;
    engine.setTrace(&trace);
    const ServingRunResult result =
        engine.run(generateTrace(deadlineSpec()));

    ASSERT_GE(trace.audit.preempts, 1u);
    EXPECT_EQ(result.preemptions, trace.audit.preempts);
    EXPECT_EQ(trace.audit.admits + trace.audit.preempts,
              result.outcomes.size());
    for (const ServeDecision& d : trace.audit.decisions) {
        if (d.kind != ServeDecisionKind::Preempt)
            continue;
        EXPECT_NE(d.victim, kInvalidId);
        EXPECT_GT(d.victimPredictedRemaining, 0u);
        EXPECT_TRUE(d.urgent);
        EXPECT_EQ(d.reason, "deadline_urgent");
        EXPECT_NE(d.deadline, kCycleNever);
    }
    // Victims that outlived their preemptor had the drain lifted.
    EXPECT_EQ(result.drainRequests, trace.audit.preempts);
    EXPECT_EQ(result.drainCancels, trace.audit.drainCancels);
    EXPECT_LE(result.drainCancels + result.drainsCompleted,
              result.drainRequests);
    EXPECT_DOUBLE_EQ(result.stats.get("serve.drain_cancels"),
                     static_cast<double>(result.drainCancels));
    EXPECT_DOUBLE_EQ(result.stats.get("serve.drains_completed"),
                     static_cast<double>(result.drainsCompleted));
}

TEST(ServeAudit, AttachingTheTraceChangesNothing)
{
    ServeConfig serve;
    serve.policy = ServePolicy::ReorderPreempt;
    ServingEngine bare(serveCfg(), serve);
    const auto rb = bare.run(generateTrace(deadlineSpec()));

    ServingEngine audited(serveCfg(), serve);
    ServeTrace trace;
    audited.setTrace(&trace);
    const auto ra = audited.run(generateTrace(deadlineSpec()));

    ASSERT_EQ(rb.outcomes.size(), ra.outcomes.size());
    for (std::size_t i = 0; i < rb.outcomes.size(); ++i) {
        EXPECT_EQ(rb.outcomes[i].admit, ra.outcomes[i].admit);
        EXPECT_EQ(rb.outcomes[i].finish, ra.outcomes[i].finish);
    }
    EXPECT_EQ(rb.totalCycles, ra.totalCycles);
    EXPECT_EQ(rb.preemptions, ra.preemptions);
}

// --- request lifecycle spans --------------------------------------------

TEST(ServeLifecycle, OutcomesCarryFirstDispatchAndPrediction)
{
    ServeConfig serve;
    serve.policy = ServePolicy::Fcfs;
    ServingEngine engine(serveCfg(), serve);
    const ServingRunResult result = engine.run(generateTrace(smallSpec()));
    for (const RequestOutcome& out : result.outcomes) {
        ASSERT_NE(out.firstDispatch, kCycleNever);
        EXPECT_GE(out.firstDispatch, out.admit);
        EXPECT_LT(out.firstDispatch, out.finish);
        EXPECT_GT(out.predictedTotal, 0u);
    }
}

TEST(ServeLifecycle, TenantLanesCarryTheSpans)
{
    const GpuConfig config = serveCfg();
    Tracer tracer(config.numCores, config.numMemPartitions);
    const std::uint32_t fixed = tracer.numTracks();

    ServeConfig serve;
    serve.policy = ServePolicy::Fcfs;
    ServingEngine engine(config, serve);
    Observer obs;
    obs.tracer = &tracer;
    engine.setObserver(obs);
    const auto trace = generateTrace(smallSpec());
    const ServingRunResult result = engine.run(trace);

    // One extra lane per tenant, after the fixed tracks.
    ASSERT_EQ(tracer.numTracks(), fixed + 2);
    EXPECT_EQ(tracer.trackName(fixed), "tenant0");
    EXPECT_EQ(tracer.trackName(fixed + 1), "tenant1");

    const auto arrivals = tracer.eventsOfKind(TraceEventKind::ServeArrival);
    const auto queued = tracer.eventsOfKind(TraceEventKind::ServeQueued);
    const auto running = tracer.eventsOfKind(TraceEventKind::ServeRunning);
    EXPECT_EQ(arrivals.size(), trace.size());
    EXPECT_EQ(queued.size(), trace.size());
    EXPECT_EQ(running.size(), trace.size());

    // Spans agree with the outcomes: queued ends at admit with duration
    // admit - release; running ends at finish.
    for (const TraceEvent& e : queued) {
        const RequestOutcome& out =
            result.outcomes.at(static_cast<std::size_t>(e.arg0));
        EXPECT_EQ(e.cycle, out.admit);
        EXPECT_EQ(e.duration, out.admit - out.release);
    }
    for (const TraceEvent& e : running) {
        const RequestOutcome& out =
            result.outcomes.at(static_cast<std::size_t>(e.arg0));
        EXPECT_EQ(e.cycle, out.finish);
        EXPECT_EQ(e.duration, out.finish - out.firstDispatch);
    }
}

// --- serving gauges on the sampler --------------------------------------

TEST(ServeSampler, GaugesRideEveryFencedSample)
{
    const GpuConfig config = serveCfg();
    IntervalSampler sampler(256);
    ServeConfig serve;
    serve.policy = ServePolicy::Fcfs;
    ServingEngine engine(config, serve);
    Observer obs;
    obs.sampler = &sampler;
    engine.setObserver(obs);
    engine.run(generateTrace(smallSpec()));

    ASSERT_GT(sampler.samples(), 0u);
    for (const char* name :
         {"serve.queue_depth", "serve.running_kernels",
          "serve.occupied_cta_slots", "serve.headroom_slots",
          "serve.drains_in_flight"}) {
        const SampleSeries* series = sampler.find(name);
        ASSERT_NE(series, nullptr) << name;
        EXPECT_EQ(series->kind, SeriesKind::Gauge) << name;
        EXPECT_EQ(series->values.size(), sampler.samples()) << name;
    }
    // The machine served work, so something ran at some point.
    const SampleSeries* running = sampler.find("serve.running_kernels");
    double peak = 0.0;
    for (const double v : running->values)
        peak = std::max(peak, v);
    EXPECT_GE(peak, 1.0);
}

TEST(ServeSampler, GaugesAreFastForwardInvariant)
{
    auto gaugesFor = [](bool fast_forward) {
        IntervalSampler sampler(256);
        ServeConfig serve;
        serve.policy = ServePolicy::Fcfs;
        ServingEngine engine(serveCfg(fast_forward), serve);
        Observer obs;
        obs.sampler = &sampler;
        engine.setObserver(obs);
        engine.run(generateTrace(smallSpec()));
        std::ostringstream os;
        sampler.writeCsv(os);
        return os.str();
    };
    EXPECT_EQ(gaugesFor(true), gaugesFor(false));
}

// --- servetrace artifact determinism ------------------------------------

std::string
serveTraceJsonFor(const GpuConfig& config, unsigned jobs)
{
    const std::vector<ServePolicy> policies = {ServePolicy::Fcfs,
                                               ServePolicy::ReorderPreempt};
    struct Point
    {
        ServingRunResult result;
        ServeTrace trace;
    };
    const ParallelRunner runner(jobs);
    const auto results =
        runner.map<Point>(policies.size(), [&](std::size_t i) {
            ServeConfig serve;
            serve.policy = policies[i];
            Point point;
            ServingEngine engine(config, serve);
            engine.setTrace(&point.trace);
            point.result = engine.run(generateTrace(deadlineSpec()));
            return point;
        });
    ServeTraceReport report("test_servetrace");
    for (std::size_t i = 0; i < policies.size(); ++i) {
        report.addRun(toString(policies[i]), "deadline", results[i].result,
                      results[i].trace);
    }
    return report.toJson();
}

TEST(ServeTraceDeterminism, FastForwardOnOffByteIdentical)
{
    EXPECT_EQ(serveTraceJsonFor(serveCfg(true), 2),
              serveTraceJsonFor(serveCfg(false), 2));
}

TEST(ServeTraceDeterminism, JobCountByteIdentical)
{
    EXPECT_EQ(serveTraceJsonFor(serveCfg(), 1),
              serveTraceJsonFor(serveCfg(), 4));
}

TEST(ServeTraceDeterminism, RepeatRunByteIdentical)
{
    EXPECT_EQ(serveTraceJsonFor(serveCfg(), 2),
              serveTraceJsonFor(serveCfg(), 2));
}

TEST(ServeTraceReport, JsonCarriesSchemaDecisionsAndPredictor)
{
    ServeConfig serve;
    serve.policy = ServePolicy::ReorderPreempt;
    ServingEngine engine(serveCfg(), serve);
    ServeTrace trace;
    engine.setTrace(&trace);
    const auto result = engine.run(generateTrace(deadlineSpec()));

    ServeTraceReport report("t");
    report.addRun("reorder+preempt", "deadline", result, trace);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"bsched-servetrace-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"preempt\""), std::string::npos);
    EXPECT_NE(json.find("\"victim_predicted_remaining\""),
              std::string::npos);
    EXPECT_NE(json.find("\"error_buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"request_spans\""), std::string::npos);
}

TEST(ServeTraceReport, DuplicatePolicyTraceDies)
{
    ServingRunResult result;
    ServeTrace trace;
    ServeTraceReport report("dup");
    report.addRun("fcfs", "t", result, trace);
    EXPECT_DEATH(report.addRun("fcfs", "t", result, trace), "duplicate");
}

// --- report -------------------------------------------------------------

TEST(ServingReport, DuplicatePolicyTraceDies)
{
    ServingReport report("dup");
    ServingSummary s;
    s.policy = "fcfs";
    s.trace = "t";
    report.addRun(s);
    EXPECT_DEATH(report.addRun(s), "duplicate");
}

TEST(ServingReport, MissingIsolatedRuntimeDies)
{
    ServingRunResult result;
    RequestOutcome out;
    out.req.workload = "unknown-kernel";
    out.release = 0;
    out.admit = 1;
    out.finish = 10;
    result.outcomes = {out};
    result.totalCycles = 10;
    EXPECT_DEATH(
        summarizeServing("fcfs", "t", result, fakeIsolated()),
        "isolated");
}

TEST(ServingReport, JsonCarriesSchemaAndRuns)
{
    ServingReport report("fig_serving");
    ServingSummary s;
    s.policy = "fcfs";
    s.trace = "t";
    s.requests = 3;
    report.addRun(s);
    report.addMetric("t.p99_gain_reorder", 1.5);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"bsched-serving-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"fcfs\""), std::string::npos);
    EXPECT_NE(json.find("\"t.p99_gain_reorder\": 1.5"), std::string::npos);
}

} // namespace
} // namespace bsched
