/**
 * @file
 * Opcode set for the synthetic SASS-like instruction model. The simulator
 * is a performance model: instructions carry register dependencies,
 * latency class and (for memory ops) an address-pattern id, but no data
 * semantics.
 */

#ifndef BSCHED_ISA_OPCODE_HH
#define BSCHED_ISA_OPCODE_HH

#include <cstdint>

namespace bsched {

/** Instruction kinds recognized by the SIMT core. */
enum class Opcode : std::uint8_t
{
    Alu,      ///< integer/FP ALU op (aluLatency)
    Sfu,      ///< special-function op (sfuLatency, SFU port limited)
    LdGlobal, ///< global-memory load through coalescer/L1/L2/DRAM
    StGlobal, ///< global-memory store (write-through, fire-and-forget)
    LdShared, ///< shared-memory load (bank-conflict model)
    StShared, ///< shared-memory store
    Bar,      ///< CTA-wide barrier
    Exit,     ///< warp terminates
};

/** True for LdGlobal/StGlobal/LdShared/StShared. */
bool isMemory(Opcode op);

/** True for LdGlobal/StGlobal. */
bool isGlobalMemory(Opcode op);

/** True for loads (global or shared). */
bool isLoad(Opcode op);

/** True for stores (global or shared). */
bool isStore(Opcode op);

/** Short mnemonic, e.g. "ld.global". */
const char* mnemonic(Opcode op);

} // namespace bsched

#endif // BSCHED_ISA_OPCODE_HH
