"""schema-drift — C++ emitters and committed schemas must agree.

Every stat, sampler series and artifact key is part of a contract:
docs/OBSERVABILITY.md and docs/SERVING.md document the names analysts
consume, and the committed ``bench/BENCH_*.json`` baselines byte-gate
the writers in CI. A name added in C++ but not in the docs is invisible
to consumers; a name documented but no longer emitted is a silent lie;
a JSON key a writer emits that the committed baseline lacks means the
baseline predates the writer and the byte-gate is about to fire — or
worse, was refreshed without review.

Three cross-checks:

 - sampler series literals (``record("...")``) vs the ``| series |``
   tables in docs/OBSERVABILITY.md, both directions;
 - ``serve.*`` StatSet literals (``set("serve...")``) vs the
   ``| stat |`` tables in docs/SERVING.md, both directions;
 - escaped JSON keys in artifact writers vs the key set of the
   committed bench baseline with the same ``schema`` string (writer
   direction only — baselines legitimately contain dynamic keys such
   as workload names).
"""

from __future__ import annotations

import json
import re

from ..engine import Context, Finding, line_at

NAME = "schema-drift"

RULES = {
    "undocumented-series": "sampler series recorded in C++ but absent "
                           "from the series tables in "
                           "docs/OBSERVABILITY.md",
    "stale-series-doc": "series documented in docs/OBSERVABILITY.md "
                        "but no longer recorded anywhere in src/",
    "undocumented-stat": "serve.* stat set in C++ but absent from the "
                         "stat tables in docs/SERVING.md",
    "stale-stat-doc": "serve.* stat documented in docs/SERVING.md but "
                      "no longer set anywhere in src/",
    "unbaselined-json-key": "artifact writer emits a JSON key absent "
                            "from its committed bench/BENCH_*.json "
                            "baseline; refresh the baseline (and "
                            "docs) with the schema change",
}

SERIES_RE = re.compile(r"\brecord\(\s*\"([a-z][\w.]*)\"")
SERVE_STAT_RE = re.compile(r"\bset\(\s*\"(serve\.[\w.]*)\"")
JSON_KEY_RE = re.compile(r'\\"([a-z_][\w.]*)\\":')

OBSERVABILITY_DOC = "docs/OBSERVABILITY.md"
SERVING_DOC = "docs/SERVING.md"


def _table_names(doc_text: str, header_cell: str) -> dict[str, int]:
    """Names from the first column of markdown tables whose first
    header cell is ``header_cell``; maps name -> 1-based doc line.

    A cell may document several names at once (```a` / `b```).
    """
    names: dict[str, int] = {}
    in_table = False
    for lineno, line in enumerate(doc_text.splitlines(), 1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_table = False
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if not cells:
            continue
        if cells[0] == header_cell:
            in_table = True
            continue
        if not in_table or set(cells[0]) <= {"-", ":", " "}:
            continue
        for name in cells[0].split("/"):
            name = name.strip().strip("`").strip()
            if re.fullmatch(r"[a-z][\w]*(?:\.[\w.]+)+", name):
                names.setdefault(name, lineno)
    return names


def run(ctx: Context) -> list[Finding]:
    findings: list[Finding] = []

    obs_doc = ctx.read(OBSERVABILITY_DOC) or ""
    serving_doc = ctx.read(SERVING_DOC) or ""
    documented_series = _table_names(obs_doc, "series")
    documented_stats = _table_names(serving_doc, "stat")

    recorded_series: dict[str, tuple[str, int]] = {}
    set_stats: dict[str, tuple[str, int]] = {}
    for src in ctx.in_dirs("src/"):
        for match in SERIES_RE.finditer(src.raw):
            recorded_series.setdefault(
                match.group(1), (src.rel, line_at(src.raw, match.start())))
        for match in SERVE_STAT_RE.finditer(src.raw):
            set_stats.setdefault(
                match.group(1), (src.rel, line_at(src.raw, match.start())))

    for name in sorted(set(recorded_series) - set(documented_series)):
        rel, line = recorded_series[name]
        findings.append(Finding(
            file=rel, line=line, rule=f"{NAME}.undocumented-series",
            message=f"series '{name}' — " + RULES["undocumented-series"],
        ))
    for name in sorted(set(documented_series) - set(recorded_series)):
        findings.append(Finding(
            file=OBSERVABILITY_DOC, line=documented_series[name],
            rule=f"{NAME}.stale-series-doc",
            message=f"series '{name}' — " + RULES["stale-series-doc"],
        ))

    for name in sorted(set(set_stats) - set(documented_stats)):
        rel, line = set_stats[name]
        findings.append(Finding(
            file=rel, line=line, rule=f"{NAME}.undocumented-stat",
            message=f"stat '{name}' — " + RULES["undocumented-stat"],
        ))
    for name in sorted(set(documented_stats) - set(set_stats)):
        findings.append(Finding(
            file=SERVING_DOC, line=documented_stats[name],
            rule=f"{NAME}.stale-stat-doc",
            message=f"stat '{name}' — " + RULES["stale-stat-doc"],
        ))

    # Writer JSON keys vs the committed baseline of the same schema.
    baselines: dict[str, set[str]] = {}
    for path in ctx.glob("bench/BENCH_*.json"):
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        keys: set[str] = set()

        def collect(node, keys=keys):
            if isinstance(node, dict):
                for key, value in node.items():
                    keys.add(key)
                    collect(value)
            elif isinstance(node, list):
                for value in node:
                    collect(value)

        collect(doc)
        schema = doc.get("schema")
        if isinstance(schema, str):
            baselines[schema] = keys

    for src in ctx.in_dirs("src/"):
        for schema, keys in sorted(baselines.items()):
            if schema not in src.raw:
                continue
            for match in JSON_KEY_RE.finditer(src.raw):
                key = match.group(1)
                if key not in keys:
                    findings.append(Finding(
                        file=src.rel,
                        line=line_at(src.raw, match.start()),
                        rule=f"{NAME}.unbaselined-json-key",
                        message=f"key '{key}' (schema {schema}) — "
                                + RULES["unbaselined-json-key"],
                    ))
    return findings
