#include "cta/dyncta_sched.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

DynctaScheduler::DynctaScheduler(const GpuConfig& config)
    : CtaScheduler(config), state_(config.numCores)
{
    // Start mid-range, as the original controller does, and search from
    // there.
    const std::uint32_t start =
        std::max<std::uint32_t>(1, config.maxCtasPerCore / 2);
    for (CoreState& cs : state_) {
        cs.target = start;
        cs.nextSample = config.dyncta.samplePeriod;
    }
}

std::uint32_t
DynctaScheduler::target(std::uint32_t core) const
{
    BSCHED_CHECK(core < state_.size(),
                 "dyncta: target() for core ", core, " of ",
                 state_.size());
    return state_.at(core).target;
}

void
DynctaScheduler::sample(Cycle now, std::uint32_t core_id,
                        const SimtCore& core)
{
    CoreState& cs = state_[core_id];
    const std::uint64_t mem = core.memStallCycles() - cs.lastMemStall;
    const std::uint64_t idle = core.idleStallCycles() - cs.lastIdleStall;
    cs.lastMemStall = core.memStallCycles();
    cs.lastIdleStall = core.idleStallCycles();
    cs.nextSample = now + config_.dyncta.samplePeriod;

    const double period =
        static_cast<double>(config_.dyncta.samplePeriod);
    const double mem_frac = 100.0 * static_cast<double>(mem) / period;
    const double idle_frac = 100.0 * static_cast<double>(idle) / period;

    int delta = 0;
    if (mem_frac > config_.dyncta.memHighPct) {
        if (cs.target > 1) {
            --cs.target;
            ++cs.decreases;
            delta = -1;
        }
    } else if (mem_frac < config_.dyncta.memLowPct &&
               idle_frac > config_.dyncta.idleHighPct) {
        if (cs.target < config_.maxCtasPerCore) {
            ++cs.target;
            ++cs.increases;
            delta = 1;
        }
    }

    if (tracer_ != nullptr && delta != 0) {
        TraceEvent event;
        event.cycle = now;
        event.kind = TraceEventKind::DynctaAdjust;
        event.arg0 = cs.target;
        event.arg1 = delta;
        tracer_->record(tracer_->coreTrack(core_id), event);
    }
}

void
DynctaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                      CoreList& cores)
{
    for (std::uint32_t c = 0; c < cores.size(); ++c) {
        if (now >= state_[c].nextSample)
            sample(now, c, *cores[c]);
    }

    std::vector<KernelInstance*>& order = dispatchOrder(kernels,
                                                        cores.size());
    if (order.empty())
        return;

    for (KernelInstance* kernel : order) {
        for (std::uint32_t c = 0;
             c < cores.size() && !kernel->dispatchDone(); ++c) {
            SimtCore& core = *cores[c];
            if (usedScratch_[c] != 0 || !coreAllowed(*kernel, c))
                continue;
            const std::uint32_t cap =
                std::min(state_[c].target, staticCap(*kernel->info));
            if (core.residentCtas(kernel->id) >= cap)
                continue;
            if (!core.canAccept(*kernel->info))
                continue;
            dispatch(now, *kernel, core, blockSeqCounter_++);
            usedScratch_[c] = 1;
        }
    }
}

Cycle
DynctaScheduler::nextEventCycle(Cycle now,
                                const std::vector<KernelInstance>& kernels,
                                const CoreList& cores) const
{
    (void)kernels;
    (void)cores;
    Cycle next = kCycleNever;
    for (const CoreState& cs : state_)
        next = std::min(next, std::max(cs.nextSample, now));
    return next;
}

void
DynctaScheduler::addStats(StatSet& stats) const
{
    CtaScheduler::addStats(stats);
    for (std::size_t c = 0; c < state_.size(); ++c) {
        const std::string prefix = "dyncta.core" + std::to_string(c);
        stats.set(prefix + ".target",
                  static_cast<double>(state_[c].target));
        stats.set(prefix + ".inc", static_cast<double>(state_[c].increases));
        stats.set(prefix + ".dec", static_cast<double>(state_[c].decreases));
    }
}

} // namespace bsched
