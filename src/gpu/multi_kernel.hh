/**
 * @file
 * Multi-kernel execution policies (the paper's third mechanism).
 *
 *  - Sequential: kernels run back-to-back on the whole GPU (the classic
 *    execution model).
 *  - Spatial: concurrent kernels on disjoint core subsets (Fermi-style
 *    concurrent kernel execution).
 *  - Mixed (MCK): concurrent kernels share every core; LCS monitoring
 *    limits each kernel to its per-core N_opt so the leftover resources
 *    host the partner kernel's CTAs.
 */

#ifndef BSCHED_GPU_MULTI_KERNEL_HH
#define BSCHED_GPU_MULTI_KERNEL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "gpu/gpu.hh"
#include "kernel/kernel_info.hh"
#include "sim/config.hh"

namespace bsched {

/** How concurrent kernels share the machine. */
enum class MultiKernelPolicy
{
    Sequential,
    Spatial,
    Mixed,
};

const char* toString(MultiKernelPolicy policy);

/** Outcome of a multi-kernel run. */
struct MultiKernelReport
{
    MultiKernelPolicy policy{};
    Cycle totalCycles = 0;
    /** Per-kernel cycles when run alone on the whole GPU. */
    std::vector<Cycle> isolatedCycles;
    /** Per-kernel cycles under the policy (launch to completion). */
    std::vector<Cycle> sharedCycles;
    StatSet stats;

    /** System throughput: sum of per-kernel isolated/shared speedups. */
    double stp() const;

    /** Average normalized turnaround time: mean of shared/isolated. */
    double antt() const;

    /** Worst per-kernel slowdown: max over kernels of shared/isolated.
     *  ANTT hides a starved kernel behind the mean; this surfaces it. */
    double maxSlowdown() const;

    /**
     * Min-max fairness (Eyerman & Eeckhout): the smallest per-kernel
     * normalized progress divided by the largest, in (0, 1]. 1 means
     * every kernel suffered the same slowdown; values near 0 mean one
     * kernel monopolized the machine.
     */
    double fairness() const;
};

/**
 * Shared cache of isolated-baseline runtimes, keyed by kernel content +
 * machine configuration. Policy sweeps (and the serving benchmarks) ask
 * for the same kernel's solo runtime many times; without this each
 * sim point re-simulates it. Thread-safe: parallel sweep points may
 * share one instance. Keys are content hashes, so equal (config,
 * kernel) pairs hit regardless of which point inserted them — and the
 * cached value equals what a fresh isolated run would produce, keeping
 * artifacts byte-identical with and without the cache.
 */
class IsolatedCycleCache
{
  public:
    /** Content hash of the (machine, kernel) pair. */
    static std::uint64_t key(const GpuConfig& config,
                             const KernelInfo& kernel);

    /** True (and *out filled) when @p key is cached. */
    bool lookup(std::uint64_t key, Cycle* out) const;

    /** Record @p cycles for @p key (last writer wins; values for one
     *  key are identical by construction). */
    void insert(std::uint64_t key, Cycle cycles);

    /** Entries currently cached. */
    std::size_t size() const;

    /** Successful lookups so far (avoided isolated re-simulations). */
    std::uint64_t hits() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::uint64_t, Cycle> map_;
    mutable std::uint64_t hits_ = 0;
};

/**
 * Run @p kernels under @p policy on @p config. For Spatial, cores are
 * split evenly (in launch order) unless @p spatial_split gives explicit
 * boundaries (ascending core indices, one per kernel boundary).
 * Isolated baselines are simulated with the same config on the full
 * machine, unless @p isolated_cycles supplies precomputed values (one
 * per kernel), which avoids re-simulating them across policies. When
 * @p cache is given (and @p isolated_cycles is not), baselines are
 * looked up / deposited there instead, deduplicating across mixes that
 * share kernels.
 */
MultiKernelReport runMultiKernel(const GpuConfig& config,
                                 const std::vector<const KernelInfo*>& kernels,
                                 MultiKernelPolicy policy,
                                 std::vector<int> spatial_split = {},
                                 const std::vector<Cycle>* isolated_cycles =
                                     nullptr,
                                 IsolatedCycleCache* cache = nullptr);

} // namespace bsched

#endif // BSCHED_GPU_MULTI_KERNEL_HH
