/**
 * @file
 * Unit tests for StatSet and the mean helpers.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace bsched {
namespace {

TEST(StatSet, AddAccumulates)
{
    StatSet s;
    s.add("a.b", 1.0);
    s.add("a.b", 2.5);
    EXPECT_DOUBLE_EQ(s.get("a.b"), 3.5);
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.set("x", 1.0);
    s.set("x", 9.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 9.0);
}

TEST(StatSet, MissingStatReadsZero)
{
    StatSet s;
    EXPECT_FALSE(s.has("nope"));
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
}

TEST(StatSet, GetOrUsesFallbackOnlyWhenAbsent)
{
    StatSet s;
    s.set("present", 2.0);
    EXPECT_DOUBLE_EQ(s.getOr("present", 7.0), 2.0);
    EXPECT_DOUBLE_EQ(s.getOr("absent", 7.0), 7.0);
    // A stat explicitly set to 0 is present, not missing.
    s.set("zero", 0.0);
    EXPECT_DOUBLE_EQ(s.getOr("zero", 7.0), 0.0);
}

TEST(StatSet, RequireDiesOnMissing)
{
    StatSet s;
    EXPECT_DEATH(s.require("absent"), "missing required stat");
}

TEST(StatSet, SumBySuffixAggregatesAcrossPrefixes)
{
    StatSet s;
    s.set("core0.l1d.miss", 10);
    s.set("core1.l1d.miss", 5);
    s.set("core0.l1d.hit", 100);
    EXPECT_DOUBLE_EQ(s.sumBySuffix(".l1d.miss"), 15.0);
    EXPECT_DOUBLE_EQ(s.sumBySuffix(".l1d.hit"), 100.0);
    EXPECT_DOUBLE_EQ(s.sumBySuffix(".absent"), 0.0);
}

TEST(StatSet, NamesBySuffixInOrder)
{
    StatSet s;
    s.set("b.n_opt", 2);
    s.set("a.n_opt", 1);
    s.set("a.other", 3);
    const auto names = s.namesBySuffix(".n_opt");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.n_opt");
    EXPECT_EQ(names[1], "b.n_opt");
}

TEST(StatSet, MergeAddsValues)
{
    StatSet a;
    StatSet b;
    a.set("x", 1);
    b.set("x", 2);
    b.set("y", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(Means, GeomeanOfIdenticalValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Means, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Means, HarmonicMeanKnownValue)
{
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
}

TEST(Means, DieOnEmptyOrNonPositive)
{
    EXPECT_DEATH(geomean({}), "empty");
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
    EXPECT_DEATH(harmonicMean({-1.0}), "positive");
}

TEST(Percentile, NearestRankReturnsActualSamples)
{
    const std::vector<double> v = {50.0, 10.0, 40.0, 20.0, 30.0};
    // Nearest-rank: ceil(p/100 * 5)-th smallest; always a sample.
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 20.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 90.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
}

TEST(Percentile, SingleElementAndUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
}

TEST(Percentile, DiesOnEmptyOrBadP)
{
    EXPECT_DEATH(percentile({}, 50.0), "empty");
    EXPECT_DEATH(percentile({1.0}, -1.0), "0, 100");
    EXPECT_DEATH(percentile({1.0}, 101.0), "0, 100");
}

TEST(Percentile, ExactIntegerProductsDoNotOvershootRank)
{
    // p99 of 100 samples is rank 99 — but 99/100.0*100 rounds up to
    // 99.000000000000014 in floating point, so a divide-first ceil
    // lands one rank too high and reports the maximum instead. The
    // multiply-first epsilon-shaved rank must hit the true sample.
    std::vector<double> v(100);
    for (int i = 0; i < 100; ++i)
        v[static_cast<std::size_t>(i)] = i + 1.0; // 1..100
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 100.0);
}

TEST(Percentile, SingleElementIsEveryPercentile)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, TwoElementsSplitAtTheMedian)
{
    EXPECT_DOUBLE_EQ(percentile({2.0, 1.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({2.0, 1.0}, 50.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({2.0, 1.0}, 50.1), 2.0);
    EXPECT_DOUBLE_EQ(percentile({2.0, 1.0}, 100.0), 2.0);
}

TEST(Percentile, AllEqualValuesAtEveryP)
{
    const std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
    for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile(v, p), 5.0) << "p=" << p;
}

} // namespace
} // namespace bsched
