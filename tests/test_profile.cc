/**
 * @file
 * Tests for the issue-slot cycle-accounting profiler: the conservation
 * invariant (categories sum exactly to activeCycles × slots) across
 * every warp-scheduler kind, agreement with the legacy two-bucket
 * stall accounting, non-perturbation of simulation results, kernel
 * attribution, the `bsched-profile-v1` export, and the bounded-growth
 * regression test for BawsScheduler's per-block rotation map.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/simt_core.hh"
#include "core/warp_sched.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "kernel/occupancy.hh"
#include "kernel/program_builder.hh"
#include "obs/json.hh"
#include "obs/profile.hh"

namespace bsched {
namespace {

GpuConfig
cfg(WarpSchedKind warp_sched,
    CtaSchedKind cta_sched = CtaSchedKind::RoundRobin)
{
    GpuConfig c = makeConfig(warp_sched, cta_sched);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

/** A mixed kernel: loads, ALU stretches, and a barrier per iteration. */
KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "profiled";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Strided;
    in.strideElems = 8;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(4).load(i).alu(3).barrier().endLoop();
    k.program = b.build();
    return k;
}

RunResult
profiledRun(const GpuConfig& config, const KernelInfo& k,
            CycleProfiler& profiler)
{
    return runKernel(config, k, Observer{nullptr, nullptr, &profiler});
}

class ProfileConservation
    : public ::testing::TestWithParam<WarpSchedKind>
{};

/**
 * The tentpole invariant: on every core the six exclusive categories
 * sum to exactly activeCycles × schedulerSlots — every slot cycle is
 * accounted once and only once, for every warp-scheduler kind.
 */
TEST_P(ProfileConservation, CategoriesSumToActiveCyclesTimesSlots)
{
    const GpuConfig config = cfg(GetParam());
    CycleProfiler profiler;
    const RunResult result = profiledRun(config, kernel(), profiler);

    ASSERT_EQ(profiler.numCores(), config.numCores);
    ASSERT_EQ(profiler.slotsPerCore(), config.numSchedulersPerCore);
    std::uint64_t machine_slot_cycles = 0;
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        const auto active = static_cast<std::uint64_t>(
            result.stats.require("core" + std::to_string(c) +
                                 ".active_cycles"));
        EXPECT_EQ(profiler.core(c).total(),
                  active * config.numSchedulersPerCore)
            << "core " << c;
        machine_slot_cycles += active * config.numSchedulersPerCore;
    }
    EXPECT_EQ(profiler.total().total(), machine_slot_cycles);
    EXPECT_GT(profiler.total()[SlotCat::Issued], 0u);
}

/**
 * The collapsed no-issue view must equal the legacy two-bucket
 * accounting exactly: stall_mem + stall_idle per core. DYNCTA steers by
 * those buckets, so this equality pins their semantics.
 */
TEST_P(ProfileConservation, NoIssueCyclesMatchLegacyTwoBucketStalls)
{
    const GpuConfig config = cfg(GetParam());
    CycleProfiler profiler;
    const RunResult result = profiledRun(config, kernel(), profiler);

    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        const std::string prefix = "core" + std::to_string(c);
        const double legacy = result.stats.require(prefix + ".stall_mem") +
            result.stats.require(prefix + ".stall_idle");
        EXPECT_EQ(static_cast<double>(profiler.noIssueCycles(c)), legacy)
            << "core " << c;
    }
}

/** Attaching the profiler must not change what is simulated. */
TEST_P(ProfileConservation, DoesNotPerturbSimulationResults)
{
    const GpuConfig config = cfg(GetParam());
    const KernelInfo k = kernel();
    const RunResult bare = runKernel(config, k);
    CycleProfiler profiler;
    const RunResult profiled = profiledRun(config, k, profiler);

    EXPECT_EQ(bare.cycles, profiled.cycles);
    EXPECT_EQ(bare.instrs, profiled.instrs);
    EXPECT_EQ(bare.ipc, profiled.ipc);
    EXPECT_EQ(bare.stats.entries(), profiled.stats.entries());
}

INSTANTIATE_TEST_SUITE_P(
    AllWarpSchedulers, ProfileConservation,
    ::testing::Values(WarpSchedKind::LRR, WarpSchedKind::GTO,
                      WarpSchedKind::TwoLevel, WarpSchedKind::BAWS),
    [](const ::testing::TestParamInfo<WarpSchedKind>& info) {
        std::string name = toString(info.param);
        for (char& ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

/**
 * Kernel attribution: every non-empty slot cycle belongs to exactly one
 * kernel, so per-kernel counts sum to the core totals minus `empty`
 * (which belongs to no kernel by construction).
 */
TEST(CycleProfiler, KernelCountsSumToTotalsMinusEmpty)
{
    const GpuConfig config = cfg(WarpSchedKind::GTO);
    CycleProfiler profiler;
    profiledRun(config, kernel(), profiler);

    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        SlotCounts from_kernels;
        for (const auto& [id, counts] : profiler.coreKernels(c)) {
            EXPECT_EQ(counts[SlotCat::Empty], 0u) << "kernel " << id;
            from_kernels.accumulate(counts);
        }
        const SlotCounts& total = profiler.core(c);
        for (std::size_t i = 0; i < kNumSlotCats; ++i) {
            const auto cat = static_cast<SlotCat>(i);
            if (cat == SlotCat::Empty)
                continue;
            EXPECT_EQ(from_kernels[cat], total[cat])
                << "core " << c << " " << toString(cat);
        }
    }
}

/** Two concurrent kernels both show up in the per-kernel aggregation. */
TEST(CycleProfiler, MultiKernelAttribution)
{
    const GpuConfig config = cfg(WarpSchedKind::GTO);
    const KernelInfo a = kernel();
    KernelInfo b = kernel();
    b.name = "profiled2";
    CycleProfiler profiler;
    Gpu gpu(config, Observer{nullptr, nullptr, &profiler});
    const int id_a = gpu.launchKernel(a);
    const int id_b = gpu.launchKernel(b);
    gpu.run();

    const auto totals = profiler.kernelTotals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_GT(totals.at(id_a)[SlotCat::Issued], 0u);
    EXPECT_GT(totals.at(id_b)[SlotCat::Issued], 0u);
}

/** The exported JSON parses, matches the schema, and is deterministic. */
TEST(ProfileJson, SchemaRoundTripAndDeterminism)
{
    const GpuConfig config = cfg(WarpSchedKind::GTO);
    const KernelInfo k = kernel();

    auto export_once = [&]() {
        CycleProfiler profiler;
        profiledRun(config, k, profiler);
        std::ostringstream os;
        writeProfileJson(os, profiler, "test/run");
        return os.str();
    };
    const std::string text = export_once();
    EXPECT_EQ(text, export_once()) << "export must be deterministic";

    const JsonValue doc = parseJson(text);
    EXPECT_EQ(doc.at("schema").asString(), "bsched-profile-v1");
    EXPECT_EQ(doc.at("label").asString(), "test/run");
    EXPECT_EQ(doc.at("warp_sched").asString(), toString(config.warpSched));
    EXPECT_EQ(doc.at("slots_per_core").asNumber(),
              config.numSchedulersPerCore);

    const auto& cats = doc.at("categories").asArray();
    ASSERT_EQ(cats.size(), kNumSlotCats);
    for (std::size_t i = 0; i < kNumSlotCats; ++i)
        EXPECT_EQ(cats[i].asString(), toString(static_cast<SlotCat>(i)));

    const auto& cores = doc.at("cores").asArray();
    ASSERT_EQ(cores.size(), config.numCores);
    double machine_sum = 0.0;
    for (const JsonValue& core : cores) {
        const auto& counts = core.at("counts").asObject();
        ASSERT_EQ(counts.size(), kNumSlotCats);
        double sum = 0.0;
        for (const auto& [name, value] : counts)
            sum += value.asNumber();
        EXPECT_EQ(sum, core.at("slot_cycles").asNumber());
        EXPECT_LE(core.at("no_issue_cycles").asNumber(),
                  core.at("slot_cycles").asNumber());
        machine_sum += sum;
        ASSERT_TRUE(core.at("kernels").isArray());
    }
    double total_sum = 0.0;
    for (const auto& [name, value] : doc.at("total").asObject())
        total_sum += value.asNumber();
    EXPECT_EQ(total_sum, machine_sum);
    ASSERT_TRUE(doc.at("kernels").isArray());
    EXPECT_EQ(doc.at("kernels").asArray().size(), 1u);
}

/** Reattaching one profiler to an identically-shaped machine is fine. */
TEST(CycleProfiler, AccumulatesAcrossSameShapeRuns)
{
    const GpuConfig config = cfg(WarpSchedKind::GTO);
    const KernelInfo k = kernel();
    CycleProfiler profiler;
    profiledRun(config, k, profiler);
    const std::uint64_t after_one = profiler.total().total();
    profiledRun(config, k, profiler);
    EXPECT_EQ(profiler.total().total(), 2 * after_one);
}

/**
 * Regression test for the BawsScheduler::rotate_ leak: per-block
 * rotation pointers must be pruned when a block's last CTA on the core
 * retires, so the map stays bounded by live residency across a long
 * run and is empty when the kernel drains.
 */
TEST(BawsScheduler, RotateMapStaysBoundedAndDrains)
{
    GpuConfig config = cfg(WarpSchedKind::BAWS, CtaSchedKind::Block);
    KernelInfo k = kernel();
    k.grid = {96, 1, 1}; // many blocks so an unbounded map would show
    const std::uint32_t max_ctas = maxCtasPerCore(config, k);

    Gpu gpu(config);
    gpu.launchKernel(k);
    auto baws_entries = [&](const SimtCore& core) {
        std::size_t most = 0;
        for (const auto& sched : core.schedulers()) {
            const auto* baws =
                dynamic_cast<const BawsScheduler*>(sched.get());
            EXPECT_NE(baws, nullptr);
            if (baws != nullptr)
                most = std::max(most, baws->rotateEntries());
        }
        return most;
    };
    std::size_t peak = 0;
    while (gpu.stepCycle()) {
        for (const auto& core : gpu.cores())
            peak = std::max(peak, baws_entries(*core));
    }
    EXPECT_GT(peak, 0u) << "BAWS never tracked a block";
    EXPECT_LE(peak, max_ctas)
        << "rotate_ outgrew the core's live-CTA bound";
    for (const auto& core : gpu.cores())
        EXPECT_EQ(baws_entries(*core), 0u) << "rotate_ not drained";
}

} // namespace
} // namespace bsched
