/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef BSCHED_SIM_TYPES_HH
#define BSCHED_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace bsched {

/** Simulation time, in core clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid ids (warp/CTA/core/kernel). */
constexpr int kInvalidId = -1;

/** Width of a warp (threads issued in lock-step). */
constexpr int kWarpSize = 32;

} // namespace bsched

#endif // BSCHED_SIM_TYPES_HH
