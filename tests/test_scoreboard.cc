/**
 * @file
 * Unit tests for the per-warp register scoreboard.
 */

#include <gtest/gtest.h>

#include "core/scoreboard.hh"

namespace bsched {
namespace {

Instr
instrWith(std::int8_t dst, std::int8_t src0, std::int8_t src1 = kNoReg)
{
    Instr i;
    i.op = Opcode::Alu;
    i.dst = dst;
    i.src0 = src0;
    i.src1 = src1;
    return i;
}

TEST(Scoreboard, FreshBoardIssuesAnything)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.canIssue(instrWith(5, 1, 2), 0));
}

TEST(Scoreboard, RawHazardBlocksConsumer)
{
    Scoreboard sb;
    sb.setPending(5, 10);
    EXPECT_FALSE(sb.canIssue(instrWith(6, 5), 9));
    EXPECT_TRUE(sb.canIssue(instrWith(6, 5), 10));
}

TEST(Scoreboard, WawHazardBlocksRedefinition)
{
    Scoreboard sb;
    sb.setPending(5, 100);
    EXPECT_FALSE(sb.canIssue(instrWith(5, 0), 50));
}

TEST(Scoreboard, SecondSourceChecked)
{
    Scoreboard sb;
    sb.setPending(7, 100);
    EXPECT_FALSE(sb.canIssue(instrWith(8, 0, 7), 50));
}

TEST(Scoreboard, NoRegOperandsAlwaysReady)
{
    Scoreboard sb;
    Instr bar;
    bar.op = Opcode::Bar;
    EXPECT_TRUE(sb.canIssue(bar, 0));
}

TEST(Scoreboard, LoadPendingUntilRelease)
{
    Scoreboard sb;
    sb.setPendingUntilRelease(3);
    EXPECT_FALSE(sb.canIssue(instrWith(4, 3), 1'000'000));
    sb.release(3, 42);
    EXPECT_TRUE(sb.canIssue(instrWith(4, 3), 42));
}

TEST(Scoreboard, ResetClearsEverything)
{
    Scoreboard sb;
    sb.setPendingUntilRelease(3);
    sb.setPending(4, 1000);
    sb.reset();
    EXPECT_EQ(sb.pendingCount(0), 0);
    EXPECT_TRUE(sb.canIssue(instrWith(5, 3, 4), 0));
}

TEST(Scoreboard, PendingCountReflectsOutstanding)
{
    Scoreboard sb;
    sb.setPending(1, 10);
    sb.setPending(2, 20);
    EXPECT_EQ(sb.pendingCount(5), 2);
    EXPECT_EQ(sb.pendingCount(15), 1);
    EXPECT_EQ(sb.pendingCount(20), 0);
}

} // namespace
} // namespace bsched
