#include "mem/interconnect.hh"

#include <algorithm>

#include "obs/mem_profile.hh"
#include "sim/check.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace bsched {

Interconnect::Interconnect(const GpuConfig& config)
    : lineBytes_(config.l1d.lineBytes),
      numPartitions_(config.numMemPartitions)
{
    for (std::uint32_t p = 0; p < numPartitions_; ++p) {
        requestQ_.emplace_back(config.icntLatency, kChannelCapacity);
        requestBw_.emplace_back(config.icntFlitsPerCycle);
    }
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        responseQ_.emplace_back(config.icntLatency, kChannelCapacity);
        responseBw_.emplace_back(config.icntFlitsPerCycle);
    }
}

std::uint32_t
Interconnect::partitionFor(Addr line_addr) const
{
    // Hash the line index before taking the modulus. A plain modulo
    // invites partition camping: any power-of-two access stride that is
    // congruent mod numPartitions pins whole warps to a partition
    // subset. Real GPUs (and GPGPU-Sim) hash address bits into the
    // channel index for exactly this reason.
    const std::uint64_t line = line_addr / lineBytes_;
    return static_cast<std::uint32_t>(mix64(line) % numPartitions_);
}

bool
Interconnect::canSendRequest(std::uint32_t partition) const
{
    return requestQ_.at(partition).canPush();
}

void
Interconnect::sendRequest(Cycle now, const MemRequest& request)
{
    const std::uint32_t partition = partitionFor(request.lineAddr);
    // The documented protocol: callers gate on canSendRequest().
    BSCHED_CHECK(canSendRequest(partition),
                 "icnt: sendRequest to full channel ", partition);
    requestQ_.at(partition).push(now, request);
    ++requestsSent_;
    if (memProfiler_ != nullptr)
        memProfiler_->enterStage(request.reqId, MemStage::NocRequest, now);
}

bool
Interconnect::requestReady(std::uint32_t partition, Cycle now) const
{
    return requestQ_.at(partition).ready(now);
}

bool
Interconnect::ejectBudget(std::uint32_t partition, Cycle now)
{
    return requestBw_.at(partition).tryConsume(now);
}

MemRequest
Interconnect::popRequest(std::uint32_t partition, Cycle now)
{
    BSCHED_CHECK(requestReady(partition, now),
                 "icnt: popRequest before ready at partition ",
                 partition);
    return requestQ_.at(partition).pop(now);
}

bool
Interconnect::canSendResponse(std::uint32_t core) const
{
    return responseQ_.at(core).canPush();
}

void
Interconnect::sendResponse(Cycle now, std::uint32_t core,
                           const MemResponse& response)
{
    BSCHED_CHECK(canSendResponse(core),
                 "icnt: sendResponse to full channel ", core);
    responseQ_.at(core).push(now, response);
    ++responsesSent_;
    if (memProfiler_ != nullptr) {
        memProfiler_->enterStage(response.reqId, MemStage::NocResponse,
                                 now);
    }
}

bool
Interconnect::responseReady(std::uint32_t core, Cycle now) const
{
    return responseQ_.at(core).ready(now);
}

MemResponse
Interconnect::popResponse(std::uint32_t core, Cycle now)
{
    BSCHED_CHECK(responseReady(core, now),
                 "icnt: popResponse before ready at core ", core);
    return responseQ_.at(core).pop(now);
}

bool
Interconnect::responseEjectBudget(std::uint32_t core, Cycle now)
{
    return responseBw_.at(core).tryConsume(now);
}

Cycle
Interconnect::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const auto& q : requestQ_) {
        if (!q.empty())
            next = std::min(next, std::max(q.nextReady(), now));
    }
    for (const auto& q : responseQ_) {
        if (!q.empty())
            next = std::min(next, std::max(q.nextReady(), now));
    }
    return next;
}

bool
Interconnect::drained() const
{
    for (const auto& q : requestQ_) {
        if (!q.empty())
            return false;
    }
    for (const auto& q : responseQ_) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
Interconnect::addStats(StatSet& stats) const
{
    stats.add("icnt.requests", static_cast<double>(requestsSent_));
    stats.add("icnt.responses", static_cast<double>(responsesSent_));
}

} // namespace bsched
