/**
 * @file
 * E2 — the benchmark-characteristics table: per workload, the launch
 * geometry, per-thread/per-CTA resources, the occupancy-limited maximum
 * CTAs per core with its binding limit, and the paper-taxonomy class.
 */

#include <cstdio>

#include "bench_common.hh"
#include "kernel/occupancy.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    // No simulations here; parse anyway so every bench binary shares
    // the same CLI (a stray --jobs is accepted, a typo is rejected).
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const GpuConfig config = GpuConfig::gtx480();
    BenchReport report("tab_workloads");

    std::printf("E2: workload characteristics\n\n");
    Table table("suite");
    table.setHeader({"workload", "grid", "cta", "regs/t", "smem/cta",
                     "Nmax", "limiter", "type", "dyn-instrs", "notes"});
    for (const auto& name : workloadNames()) {
        const KernelInfo k = makeWorkload(name);
        report.addMetric(name + ".grid_ctas", k.gridCtas());
        report.addMetric(name + ".cta_threads", k.ctaThreads());
        report.addMetric(name + ".n_max", maxCtasPerCore(config, k));
        report.addMetric(name + ".dyn_instrs", k.totalDynamicInstrs());
        table.addRow({
            name,
            std::to_string(k.gridCtas()),
            std::to_string(k.ctaThreads()),
            std::to_string(k.regsPerThread),
            std::to_string(k.smemBytesPerCta),
            std::to_string(maxCtasPerCore(config, k)),
            toString(occupancyLimiter(config, k)),
            toString(k.typeClass),
            std::to_string(k.totalDynamicInstrs()),
            workloadNotes(name),
        });
    }
    std::printf("%s", table.toText().c_str());
    bench::writeReport(opts, report);
    bench::writeServeTraceArtifact(opts);
    return 0;
}
