"""Entry point: ``python3 tools/analyze`` or ``python3 -m analyze``.

Directory execution runs this file outside the package, so bootstrap
the package import by putting tools/ on sys.path first.
"""

import sys

if __package__ in (None, ""):
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from analyze.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
