/**
 * @file
 * One SIMT core (SM): warp contexts, per-slot warp schedulers, register
 * scoreboards, barrier handling, shared-memory timing and the LD/ST unit
 * with its L1D. CTAs are placed here by the CTA scheduler; the core
 * reports CTA completions and exposes the per-CTA issue counters the LCS
 * monitor reads.
 */

#ifndef BSCHED_CORE_SIMT_CORE_HH
#define BSCHED_CORE_SIMT_CORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ldst_unit.hh"
#include "core/warp.hh"
#include "core/warp_sched.hh"
#include "kernel/occupancy.hh"
#include "obs/profile.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bsched {

class Tracer;
class MemProfiler;

/**
 * Why one warp could not issue this cycle — the reason warpReady()
 * collapses to a bool. Produced by SimtCore::warpRefusal() on the
 * profiling path only; the fast issue loop never computes it.
 */
enum class IssueRefusal : std::uint8_t
{
    None,     ///< the warp would issue
    WaitLoad, ///< operand pending on an outstanding load (memory latency)
    WaitExec, ///< operand pending on a fixed-latency ALU/SFU/smem result
    MemPort,  ///< LD/ST issue ports already used this cycle
    MemUnit,  ///< LD/ST unit refused admission (queue/outgoing/MSHR full)
    SmemBusy, ///< shared-memory port serializing a bank-conflict replay
    SfuPort,  ///< SFU issue ports already used this cycle
};

/** A CTA completion event reported to the CTA scheduler. */
struct CtaDoneEvent
{
    std::uint32_t coreId = 0;
    int kernelId = kInvalidId;
    std::uint32_t ctaId = 0;
    std::uint64_t issuedInstrs = 0; ///< instructions this CTA issued
    Cycle doneCycle = 0;
    /** The completed CTA's kernel; LCS needs its occupancy cap. */
    const KernelInfo* info = nullptr;
};

/** A streaming multiprocessor. */
class SimtCore
{
  public:
    SimtCore(const GpuConfig& config, std::uint32_t id);

    // --- CTA lifecycle --------------------------------------------------

    /** True if one CTA of @p kernel fits right now (resources + warps). */
    bool canAccept(const KernelInfo& kernel) const;

    /**
     * Place a CTA. @p block_seq groups CTAs dispatched together (BCS);
     * under non-block scheduling every CTA gets a unique block.
     * Returns the hardware CTA slot index.
     */
    int launchCta(Cycle now, const KernelInfo& kernel, int kernel_id,
                  std::uint32_t cta_id, std::uint64_t block_seq);

    /** CTA completions since the last drain. */
    std::vector<CtaDoneEvent> drainCompletedCtas();

    // --- simulation -----------------------------------------------------

    /**
     * Advance one cycle. Returns true when anything observable happened
     * on this core — an instruction issued, a load completion applied,
     * or LD/ST-unit activity. A false return marks a quiet cycle whose
     * repetitions may be elided by idle fast-forward (their counter
     * effects are replayed by accountQuietSpan()).
     */
    bool tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which this core can do observable
     * work on its own, valid only right after a quiet tick: the LD/ST
     * unit's next event, or the first scoreboard/shared-memory wake
     * time of a live non-barrier warp. Warps waiting on an outstanding
     * load (or an MSHR-full refusal) wake via memory-system events,
     * which the GPU bounds separately. kCycleNever if only external
     * events can wake the core.
     */
    Cycle nextWorkCycle(Cycle now) const;

    /**
     * Replay the per-cycle counter effects of @p n elided quiet cycles
     * (classified as of @p now, the first skipped cycle): active/stall
     * cycle counters, per-slot profiler categories — constant across
     * the span because it ends at every wake time — and the L1 MSHR
     * occupancy samples on @p memprof.
     */
    void accountQuietSpan(Cycle now, std::uint64_t n, MemProfiler* memprof);

    // --- memory-side interface (driven by the GPU top level) ------------

    bool hasOutgoing() const { return ldst_.hasOutgoing(); }
    const MemRequest& peekOutgoing() const { return ldst_.peekOutgoing(); }
    MemRequest popOutgoing() { return ldst_.popOutgoing(); }
    void deliverResponse(Cycle now, const MemResponse& response);

    // --- status & monitoring ---------------------------------------------

    /** No resident CTAs and no memory traffic in flight. */
    bool idle() const;

    std::uint32_t residentCtas() const { return resources_.residentCtas(); }
    std::uint32_t residentCtas(int kernel_id) const;
    const CoreResources& resources() const { return resources_; }

    std::uint64_t instrsIssued() const { return issuedTotal_; }
    std::uint64_t instrsIssued(int kernel_id) const;

    /** Cycles in which at least one instruction issued. */
    std::uint64_t issueCycles() const { return issueCycles_; }

    /**
     * Stall accounting for dynamic CTA controllers (DYNCTA-style):
     * cycles with resident CTAs but zero issue, split into
     * memory-bound (outstanding loads in the LD/ST unit) and
     * starved (no memory outstanding — too little work/TLP).
     */
    std::uint64_t memStallCycles() const { return stallMemCycles_; }
    std::uint64_t idleStallCycles() const { return stallIdleCycles_; }

    /** Cycle the first CTA of @p kernel_id arrived; kCycleNever if none. */
    Cycle kernelFirstLaunch(int kernel_id) const;

    /**
     * Per-CTA issued-instruction counts for @p kernel_id on this core:
     * completed CTAs first, then resident ones. This is the signal the
     * LCS monitor turns into N_opt = ceil(total / max).
     */
    std::vector<std::uint64_t> ctaIssueCounts(int kernel_id) const;

    std::uint32_t id() const { return id_; }
    const std::vector<Warp>& warps() const { return warps_; }
    const LdstUnit& ldst() const { return ldst_; }

    /** The per-slot warp schedulers (tests, introspection). */
    const std::vector<std::unique_ptr<WarpScheduler>>& schedulers() const
    {
        return schedulers_;
    }

    /**
     * Why @p warp cannot issue at @p now (IssueRefusal::None if it can).
     * Must stay the exact reason-reporting mirror of warpReady(): the
     * fast issue loop keeps the bool so the profiling-disabled path does
     * no extra work, and the profiler calls this only for slots that
     * failed to issue.
     */
    IssueRefusal warpRefusal(const Warp& warp, Cycle now) const;

    void addStats(StatSet& stats) const;

    /**
     * Attach the event tracer (observability): CTA dispatch/complete
     * events land on this core's track, and the L1D reports miss
     * bursts. Null detaches; the disabled cost is an untaken branch.
     */
    void setTracer(Tracer* tracer);

    /**
     * Attach the cycle-accounting profiler (observability): every
     * scheduler-slot cycle while the core is active is classified into
     * an exclusive stall category. Null detaches; the disabled cost is
     * an untaken null-pointer branch per slot.
     */
    void setProfiler(CycleProfiler* profiler) { profiler_ = profiler; }

    /**
     * Attach the memory profiler (observability): forwarded to the
     * LD/ST unit, which opens a request record per L1 read miss.
     */
    void setMemProfiler(MemProfiler* prof) { ldst_.setMemProfiler(prof); }

  private:
    struct HwCta
    {
        bool valid = false;
        int kernelId = kInvalidId;
        std::uint32_t ctaId = 0;
        std::uint64_t ctaSeq = 0;
        std::uint64_t blockSeq = 0;
        std::uint32_t warpsTotal = 0;
        std::uint32_t warpsDone = 0;
        std::uint64_t issued = 0;
        CtaFootprint footprint{};
        const KernelInfo* kernel = nullptr;
        Cycle launchCycle = 0;
    };

    struct KernelTrack
    {
        Cycle firstLaunch = kCycleNever;
        std::uint64_t issued = 0;
        std::vector<std::uint64_t> completedCtaIssued;
    };

    /** True if @p warp can issue its next instruction this cycle. */
    bool warpReady(const Warp& warp, Cycle now) const;
    /** Structural half of warpReady (ports, LD/ST admission, smem). */
    bool structuralReady(const Instr& instr, Cycle now) const;
    /** Classify a slot that issued nothing this cycle (profiler path):
     *  the category and the kernel it is attributed to. */
    std::pair<int, SlotCat> classifyStalledSlot(std::size_t slot,
                                                Cycle now) const;
    void issueFrom(int warp_id, Cycle now);
    void finishWarp(int warp_id, Cycle now);
    void completeCta(int hw_cta, Cycle now);
    void checkBarrier(int hw_cta);
    /** Release completed loads; true if any release was applied. */
    bool applyCompletions(Cycle now);

    GpuConfig config_;
    std::uint32_t id_;
    std::string name_;
    std::vector<Warp> warps_;
    std::vector<HwCta> ctas_;
    CoreResources resources_;
    LdstUnit ldst_;
    std::vector<std::unique_ptr<WarpScheduler>> schedulers_;
    std::map<int, KernelTrack> kernels_;
    std::vector<CtaDoneEvent> completed_;

    /**
     * SoA-packed hot state for the issue loop: a per-warp-slot cycle
     * before which the occupying warp's scoreboard cannot clear.
     * Strictly a lower bound — set when a warp's operands are found
     * pending, reset to 0 on launch, issue and load release — so
     * skipping a slot with warpWake_ > now never changes behaviour; it
     * only avoids touching the cold Warp record and its scoreboard.
     */
    std::vector<Cycle> warpWake_;
    /** SoA mirror of Warp::kernelId (set at warp launch) so the fused
     *  stall classification can attribute a wake-cached slot without
     *  touching the cold Warp record. Only read while warpWake_ > now,
     *  which implies the slot's warp is live. */
    std::vector<int> warpKernel_;
    /** Free warp contexts (kept in sync with Warp::valid): canAccept
     *  in O(1) instead of scanning 48 slots per scheduler tick. */
    std::uint32_t freeWarpSlots_ = 0;
    /** Reused ready-list buffer (avoids per-tick allocation). */
    std::vector<int> readyScratch_;

    std::uint64_t ctaSeqCounter_ = 0;
    Cycle smemBusyUntil_ = 0;

    // Observability (null = disabled).
    Tracer* tracer_ = nullptr;
    std::uint32_t track_ = 0;
    CycleProfiler* profiler_ = nullptr;

    // Per-cycle structural issue budgets.
    std::uint32_t memIssuedThisCycle_ = 0;
    std::uint32_t sfuIssuedThisCycle_ = 0;

    // Statistics.
    std::uint64_t issuedTotal_ = 0;
    std::uint64_t issuedAlu_ = 0;
    std::uint64_t issuedSfu_ = 0;
    std::uint64_t issuedMem_ = 0;
    std::uint64_t issuedBar_ = 0;
    std::uint64_t activeCycles_ = 0;
    std::uint64_t issueCycles_ = 0; ///< cycles with >=1 instruction issued
    std::uint64_t stallMemCycles_ = 0;
    std::uint64_t stallIdleCycles_ = 0;
    std::uint64_t ctasLaunched_ = 0;
    std::uint64_t ctasCompleted_ = 0;
};

} // namespace bsched

#endif // BSCHED_CORE_SIMT_CORE_HH
